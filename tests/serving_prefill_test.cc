// The prefill/decode equivalence suite: the serving engine's prefill phase
// must be indistinguishable — bit for bit — from having decoded the same
// prompt from scratch. The golden test pins that contract under full
// attention, where exactness is mathematically required (the sparse DIPRS
// path is approximate by design, so equivalence there is covered by the
// concurrent-vs-sequential schedule tests instead, which hold bit-exactly on
// every path).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/query/batched_prefill.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

constexpr uint64_t kDocSeed = 7;

/// Deterministic QKV for prompt token `token` of the (single) synthetic
/// document — the one source of truth shared by the imported context KV, the
/// engine's fill_prompt callback, and the fresh-session golden run.
void FillPromptToken(const ModelConfig& m, size_t token, uint32_t layer, float* q,
                     float* k, float* v) {
  Rng rng(kDocSeed * 2654435761ull + token * 9176ull + layer * 97ull);
  rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
  rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
  rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
}

/// Token id at prompt position `i` (arbitrary, but stable so prefix matching
/// engages).
int32_t PromptTokenId(size_t i) { return 500 + static_cast<int32_t>(i); }

struct PrefillFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t stored_tokens;  ///< Prompt prefix held by the imported context.
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  uint64_t context_id = 0;
  ThreadPool pool{4};

  /// `import_tokens` == 0 leaves the store empty (every prompt fully
  /// prefills). `short_context_threshold` picks full attention (large) or the
  /// sparse DIPRS path (small).
  explicit PrefillFixture(size_t import_tokens, size_t short_context_threshold = 4096)
      : stored_tokens(import_tokens) {
    options.model = model;
    options.session.optimizer.short_context_threshold = short_context_threshold;
    options.session.window = WindowConfig{8, 16};
    db = std::make_unique<AlayaDB>(options, &env);
    if (import_tokens > 0) {
      auto kv = std::make_unique<KvCache>(model);
      const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
      const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
      std::vector<float> q(qdim), k(kvdim), v(kvdim);
      for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
        for (size_t t = 0; t < import_tokens; ++t) {
          FillPromptToken(model, t, layer, q.data(), k.data(), v.data());
          kv->AppendToken(layer, k.data(), v.data());
        }
      }
      std::vector<int32_t> tokens(import_tokens);
      for (size_t i = 0; i < import_tokens; ++i) tokens[i] = PromptTokenId(i);
      auto imported = db->Import(std::move(tokens), std::move(kv));
      EXPECT_TRUE(imported.ok()) << imported.status().ToString();
      context_id = imported.ValueOr(0);
    }
  }

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  /// A request over the first `prompt_tokens` positions of the synthetic
  /// document: tokens the store covers are reused, the rest prefill through
  /// fill_prompt. Decode inputs depend only on (seed, step, layer).
  ServingRequest MakeRequest(size_t prompt_tokens, size_t steps,
                             uint64_t decode_seed) const {
    ServingRequest r;
    r.prompt.resize(prompt_tokens);
    for (size_t i = 0; i < prompt_tokens; ++i) r.prompt[i] = PromptTokenId(i);
    r.max_new_tokens = steps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_prompt = [m](size_t token, uint32_t layer, float* q, float* k, float* v) {
      FillPromptToken(m, token, layer, q, k, v);
    };
    r.fill_step = [m, decode_seed](size_t step, uint32_t layer, float* q, float* k,
                                   float* v) {
      Rng rng(decode_seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    r.token_at = [decode_seed](size_t step) {
      return static_cast<int32_t>(40000 + decode_seed * 100 + step);
    };
    return r;
  }
};

/// Runs one request to completion on `fx` and returns a copy of its result.
RequestResult RunOne(PrefillFixture& fx, ServingRequest req) {
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  auto id = engine.Submit(std::move(req));
  EXPECT_TRUE(id.ok()) << id.status().ToString();
  EXPECT_TRUE(engine.RunToCompletion().ok());
  const RequestResult* r = engine.result(id.ValueOr(RequestHandle{}).id());
  EXPECT_NE(r, nullptr);
  return r != nullptr ? *r : RequestResult{};
}

// --- Tentpole acceptance: partial-prefix prompts now serve end to end. ---

TEST(ServingPrefillTest, PromptPastStoredContextCompletesThroughPrefill) {
  constexpr size_t kStored = 96, kSuffix = 32, kSteps = 4;
  PrefillFixture fx(kStored);
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  auto id = engine.Submit(fx.MakeRequest(kStored + kSuffix, kSteps, /*seed=*/11));
  ASSERT_TRUE(id.ok()) << id.status().ToString();
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->reused_prefix, kStored);
  EXPECT_EQ(r->reused_context_id, fx.context_id);
  EXPECT_EQ(r->prefilled_tokens, kSuffix);
  EXPECT_EQ(r->steps_completed, kSteps);
  EXPECT_EQ(r->outputs.size(),
            kSteps * static_cast<size_t>(fx.model.num_q_heads) * fx.model.head_dim);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.tokens_prefilled, kSuffix);
  EXPECT_EQ(snap.tokens_decoded, kSteps);
  // Peak residency is sampled during the prefill phase too: the prefilled
  // suffix lands in session-local (device-resident) KV, so the observed peak
  // must cover it alongside the window and decoded tail.
  EXPECT_GE(snap.peak_gpu_bytes,
            (kSuffix + kSteps) * fx.model.KvBytesPerToken());
  // Throughput stays finite even when the run completes faster than the wall
  // clock resolves.
  EXPECT_GT(snap.tokens_per_second, 0.0);
  EXPECT_TRUE(std::isfinite(snap.tokens_per_second));
}

TEST(ServingPrefillTest, NoMatchPromptPrefillsEntirePrompt) {
  constexpr size_t kPrompt = 48, kSteps = 3;
  PrefillFixture fx(/*import_tokens=*/0);
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  auto id = engine.Submit(fx.MakeRequest(kPrompt, kSteps, /*seed=*/12));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->reused_prefix, 0u);
  EXPECT_EQ(r->reused_context_id, 0u);
  EXPECT_EQ(r->prefilled_tokens, kPrompt);
  EXPECT_EQ(r->steps_completed, kSteps);
}

// --- The equivalence golden: prefill into a reused context == decoding the
// --- same prompt in a fresh session from scratch, bit for bit.

TEST(ServingPrefillTest, PrefillDecodeEquivalenceGolden) {
  constexpr size_t kStored = 96, kSuffix = 32, kSteps = 4;
  constexpr uint64_t kSeed = 21;

  // Run A: the prompt's first 96 tokens are a stored context; the engine
  // reuses them and prefills only the 32-token suffix.
  PrefillFixture reused_fx(kStored);
  const RequestResult a =
      RunOne(reused_fx, reused_fx.MakeRequest(kStored + kSuffix, kSteps, kSeed));
  ASSERT_TRUE(a.status.ok()) << a.status.ToString();
  ASSERT_EQ(a.reused_prefix, kStored);
  ASSERT_EQ(a.prefilled_tokens, kSuffix);

  // Run B: empty store — the same prompt decodes in a fresh session from
  // scratch (every token prefilled locally).
  PrefillFixture fresh_fx(/*import_tokens=*/0);
  const RequestResult b =
      RunOne(fresh_fx, fresh_fx.MakeRequest(kStored + kSuffix, kSteps, kSeed));
  ASSERT_TRUE(b.status.ok()) << b.status.ToString();
  ASSERT_EQ(b.reused_prefix, 0u);
  ASSERT_EQ(b.prefilled_tokens, kStored + kSuffix);

  // Bit-identical: reuse + prefill changes where KV lives, never the math.
  ASSERT_EQ(a.outputs.size(), b.outputs.size());
  EXPECT_EQ(a.outputs, b.outputs);
}

TEST(ServingPrefillTest, EquivalenceHoldsUnderConcurrentSchedule) {
  constexpr size_t kStored = 96, kSuffix = 24, kSteps = 3;

  // Three request classes: full reuse, partial prefix (prefill), no match
  // (prompt of fresh ids, full local prefill).
  auto make_requests = [&](PrefillFixture& fx) {
    std::vector<ServingRequest> reqs;
    reqs.push_back(fx.MakeRequest(kStored, kSteps, 31));            // Full reuse.
    reqs.push_back(fx.MakeRequest(kStored + kSuffix, kSteps, 32));  // Partial.
    ServingRequest fresh = fx.MakeRequest(40, kSteps, 33);          // No match.
    for (auto& t : fresh.prompt) t += 1'000'000;
    reqs.push_back(std::move(fresh));
    return reqs;
  };

  // Concurrent schedule: all three admitted and stepped together.
  PrefillFixture conc_fx(kStored);
  ServingEngine concurrent(conc_fx.db.get(), conc_fx.EngineOptions(3));
  std::vector<uint64_t> cids;
  for (auto& r : make_requests(conc_fx)) {
    auto id = concurrent.Submit(std::move(r));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    cids.push_back(id.value().id());
  }
  ASSERT_TRUE(concurrent.RunToCompletion().ok());
  EXPECT_EQ(concurrent.snapshot().peak_concurrent_sessions, 3u);

  // Sequential schedule: identical DB state, one session at a time.
  PrefillFixture seq_fx(kStored);
  ServingEngine sequential(seq_fx.db.get(), seq_fx.EngineOptions(1));
  std::vector<uint64_t> sids;
  for (auto& r : make_requests(seq_fx)) {
    auto id = sequential.Submit(std::move(r));
    ASSERT_TRUE(id.ok());
    sids.push_back(id.value().id());
  }
  ASSERT_TRUE(sequential.RunToCompletion().ok());
  EXPECT_EQ(sequential.snapshot().peak_concurrent_sessions, 1u);

  for (size_t i = 0; i < cids.size(); ++i) {
    const RequestResult* c = concurrent.result(cids[i]);
    const RequestResult* s = sequential.result(sids[i]);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(c->status.ok()) << c->status.ToString();
    ASSERT_TRUE(s->status.ok()) << s->status.ToString();
    EXPECT_EQ(c->prefilled_tokens, s->prefilled_tokens);
    ASSERT_EQ(c->outputs.size(), s->outputs.size());
    EXPECT_EQ(c->outputs, s->outputs) << "request " << i;
  }
  // The partially-matched request prefilled exactly the suffix; the fresh one
  // its entire prompt.
  EXPECT_EQ(concurrent.result(cids[0])->prefilled_tokens, 0u);
  EXPECT_EQ(concurrent.result(cids[1])->prefilled_tokens, kSuffix);
  EXPECT_EQ(concurrent.result(cids[2])->prefilled_tokens, 40u);
}

TEST(ServingPrefillTest, ChunkSizeNeverChangesOutputs) {
  constexpr size_t kStored = 64, kSuffix = 37, kSteps = 3;  // Odd: ragged chunks.
  std::vector<float> golden;
  for (size_t chunk : {size_t{4}, size_t{16}, size_t{64}}) {
    PrefillFixture fx(kStored);
    ServingEngineOptions opts = fx.EngineOptions(1);
    opts.scheduler.prefill_chunk_tokens = chunk;
    ServingEngine engine(fx.db.get(), opts);
    auto id = engine.Submit(fx.MakeRequest(kStored + kSuffix, kSteps, /*seed=*/41));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(engine.RunToCompletion().ok());
    const RequestResult* r = engine.result(id.value().id());
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    EXPECT_EQ(r->prefilled_tokens, kSuffix);
    if (golden.empty()) {
      golden = r->outputs;
    } else {
      EXPECT_EQ(r->outputs, golden) << "chunk " << chunk;
    }
  }
}

// --- Prefill composes with the rest of the engine. ---

TEST(ServingPrefillTest, StoreAfterPrefillMaterializesFullPrompt) {
  constexpr size_t kStored = 64, kSuffix = 16, kSteps = 3;
  PrefillFixture fx(kStored);
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ServingRequest req = fx.MakeRequest(kStored + kSuffix, kSteps, /*seed=*/51);
  req.store_on_finish = true;
  auto id = engine.Submit(std::move(req));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_NE(r->stored_context_id, 0u);

  // The materialized context covers the full prompt (reused prefix + the
  // prefilled suffix, with the prompt's own ids) plus the decoded tail.
  const Context* stored = fx.db->contexts().FindUnsafeForTest(r->stored_context_id);
  ASSERT_NE(stored, nullptr);
  ASSERT_EQ(stored->length(), kStored + kSuffix + kSteps);
  for (size_t i = 0; i < kStored + kSuffix; ++i) {
    ASSERT_EQ(stored->tokens()[i], PromptTokenId(i)) << "position " << i;
  }
  EXPECT_EQ(stored->tokens().back(), 40000 + 51 * 100 + kSteps - 1);

  // A follow-up prompt over the materialized context reuses it fully — the
  // prefilled suffix is now served from the store.
  auto again = fx.db->CreateSession(stored->tokens());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, kStored + kSuffix + kSteps);
  EXPECT_TRUE(again.value().truncated_prompt.empty());
}

TEST(ServingPrefillTest, PrefillChargesModeledGpuTimeAndWallTime) {
  constexpr size_t kStored = 64, kSuffix = 32;
  PrefillFixture fx(kStored);
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  const double clock_before = fx.env.gpu_clock().Seconds();
  auto id = engine.Submit(fx.MakeRequest(kStored + kSuffix, /*steps=*/1, 61));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());
  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok());
  EXPECT_GT(r->stats.modeled_gpu_seconds, 0.0);
  EXPECT_GT(r->prefill_wall_seconds, 0.0);
  EXPECT_GT(fx.env.gpu_clock().Seconds(), clock_before);
}

// --- The batched prefill helper itself (src/query/batched_prefill.h). ---

TEST(BatchedPrefillTest, BatchAppendsKvAndRecordsQueriesPerSession) {
  const ModelConfig model = ModelConfig::Tiny();
  SessionOptions sopts;
  sopts.window = WindowConfig{8, 16};
  Session s1(model, sopts, nullptr, 0);
  Session s2(model, sopts, nullptr, 0);

  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  constexpr size_t kCount1 = 12, kCount2 = 7;
  std::vector<float> q1(kCount1 * qdim), k1(kCount1 * kvdim), v1(kCount1 * kvdim);
  std::vector<float> q2(kCount2 * qdim), k2(kCount2 * kvdim), v2(kCount2 * kvdim);
  auto fill = [model](size_t token, uint32_t layer, float* q, float* k, float* v) {
    FillPromptToken(model, token, layer, q, k, v);
  };

  ThreadPool pool(2);
  std::vector<SessionPrefillJob> jobs{
      {&s1, /*first_token=*/0, kCount1, fill, q1.data(), k1.data(), v1.data()},
      {&s2, /*first_token=*/100, kCount2, fill, q2.data(), k2.data(), v2.data()},
  };
  std::vector<Status> per_job;
  ASSERT_TRUE(ExecutePrefillJobs(jobs, &pool, &per_job).ok());
  ASSERT_EQ(per_job.size(), 2u);
  EXPECT_TRUE(per_job[0].ok()) << per_job[0].ToString();
  EXPECT_TRUE(per_job[1].ok()) << per_job[1].ToString();

  for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
    EXPECT_EQ(s1.LocalTokens(layer), kCount1);
    EXPECT_EQ(s2.LocalTokens(layer), kCount2);
    // Queries recorded for index training — one sample per prefilled token.
    ASSERT_NE(s1.recorded_queries(), nullptr);
    EXPECT_EQ(s1.recorded_queries()->NumSamples(layer), kCount1);
    EXPECT_EQ(s2.recorded_queries()->NumSamples(layer), kCount2);
  }

  // The appended KV matches the fill source exactly (token-major layout
  // sliced into per-head rows).
  std::vector<float> q(qdim), k(kvdim), v(kvdim);
  FillPromptToken(model, 100, /*layer=*/1, q.data(), k.data(), v.data());
  VectorSetView keys = s2.local_kv().Keys(/*layer=*/1, /*kv_head=*/1);
  const float* expected = k.data() + static_cast<size_t>(1) * model.head_dim;
  for (uint32_t j = 0; j < model.head_dim; ++j) {
    ASSERT_EQ(keys.Vec(0)[j], expected[j]);
  }
}

TEST(BatchedPrefillTest, JobFailureIsIsolatedPerSession) {
  const ModelConfig model = ModelConfig::Tiny();
  SessionOptions sopts;
  Session good(model, sopts, nullptr, 0);
  Session bad(model, sopts, nullptr, 0);

  const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
  const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
  std::vector<float> q(4 * qdim), k(4 * kvdim), v(4 * kvdim);
  auto fill = [model](size_t token, uint32_t layer, float* qq, float* kk, float* vv) {
    FillPromptToken(model, token, layer, qq, kk, vv);
  };

  std::vector<SessionPrefillJob> jobs{
      {&good, 0, 4, fill, q.data(), k.data(), v.data()},
      {&bad, 0, 4, fill, nullptr, nullptr, nullptr},  // Missing scratch.
  };
  std::vector<Status> per_job;
  ASSERT_TRUE(ExecutePrefillJobs(jobs, nullptr, &per_job).ok());
  EXPECT_TRUE(per_job[0].ok());
  EXPECT_EQ(per_job[1].code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(good.LocalTokens(), 4u);
  EXPECT_EQ(bad.LocalTokens(), 0u);

  // Without per_job isolation the first error surfaces directly.
  EXPECT_EQ(ExecutePrefillJobs(jobs).code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace alaya
