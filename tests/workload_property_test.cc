// Cross-task property sweep (TEST_P over all 8 ∞-Bench profiles): invariants
// the whole evaluation pipeline rests on must hold for every task profile,
// not just the ones the focused tests use.
#include <gtest/gtest.h>

#include <cmath>

#include "src/index/flat_index.h"
#include "src/llm/qkv_generator.h"
#include "src/llm/workloads.h"

namespace alaya {
namespace {

class TaskSweep : public ::testing::TestWithParam<std::string> {
 protected:
  SyntheticContextOptions MakeOptions() {
    SyntheticContextOptions opts;
    opts.model = ModelConfig{2, 4, 2, 64, 2};
    opts.spec = FindTask(InfinityBenchSuite(0.02), GetParam());
    if (opts.spec.context_tokens < 600) opts.spec.context_tokens = 600;
    return opts;
  }
};

TEST_P(TaskSweep, FlatDiprRecallsPlantedSetAtSuggestedBeta) {
  auto opts = MakeOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  const float beta = static_cast<float>(SuggestedDiprBeta(opts.spec, 64));

  double recall_sum = 0;
  size_t cases = 0;
  std::vector<float> q(64);
  for (uint32_t layer = 0; layer < 2; ++layer) {
    for (uint32_t h = 0; h < 4; ++h) {
      ctx.MakeDecodeQuery(0, layer, h, q.data());
      const uint32_t kvh = opts.model.KvHeadForQuery(h);
      FlatIndex flat(ctx.kv().Keys(layer, kvh));
      SearchResult res;
      DiprParams params;
      params.beta = beta;
      ASSERT_TRUE(flat.SearchDipr(q.data(), params, &res).ok());
      const auto& critical = ctx.CriticalSet(0, layer, h);
      if (critical.empty()) continue;
      std::vector<bool> got(ctx.num_tokens(), false);
      for (const auto& hit : res.hits) got[hit.id] = true;
      size_t found = 0;
      for (uint32_t id : critical) {
        if (got[id]) ++found;
      }
      recall_sum += static_cast<double>(found) / critical.size();
      ++cases;
    }
  }
  ASSERT_GT(cases, 0u);
  // The exact (flat) DIPR at the suggested beta must capture the planted set
  // on every task profile; jitter can shave a small tail.
  EXPECT_GE(recall_sum / cases, 0.85) << GetParam();
}

TEST_P(TaskSweep, DiprCountGrowsMonotonicallyWithBeta) {
  auto opts = MakeOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  std::vector<float> q(64);
  ctx.MakeDecodeQuery(1, 1, 1, q.data());
  FlatIndex flat(ctx.kv().Keys(1, opts.model.KvHeadForQuery(1)));
  size_t prev = 0;
  const double base = SuggestedDiprBeta(opts.spec, 64);
  for (double f : {0.25, 0.5, 0.75, 1.0, 1.5}) {
    SearchResult res;
    DiprParams params;
    params.beta = static_cast<float>(base * f);
    ASSERT_TRUE(flat.SearchDipr(q.data(), params, &res).ok());
    EXPECT_GE(res.hits.size(), prev) << GetParam() << " f=" << f;
    prev = res.hits.size();
  }
}

TEST_P(TaskSweep, BackgroundLogitsStayBelowCriticalBand) {
  auto opts = MakeOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  std::vector<float> q(64);
  ctx.MakeDecodeQuery(0, 0, 0, q.data());
  VectorSetView keys = ctx.kv().Keys(0, 0);

  std::vector<bool> is_planted(ctx.num_tokens(), false);
  for (uint32_t s = 0; s < ctx.num_sinks(); ++s) is_planted[s] = true;
  for (uint32_t t = 0; t < 8; ++t) {
    for (uint32_t id : ctx.TopicMembers(0, 0, t)) is_planted[id] = true;
  }
  const double sqrt_d = std::sqrt(64.0);
  double max_bg = -1e30;
  for (uint32_t i = 0; i < keys.n; ++i) {
    if (is_planted[i]) continue;
    max_bg = std::max(max_bg, static_cast<double>(Dot(q.data(), keys.Vec(i), 64)) /
                                  sqrt_d);
  }
  // Background never reaches the critical band floor: sparse retrieval of the
  // planted set is well-posed for every task.
  EXPECT_LT(max_bg, opts.spec.crit_z_min) << GetParam();
}

TEST_P(TaskSweep, SinkDominatesWindowPrior) {
  auto opts = MakeOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  std::vector<float> q(64);
  ctx.MakeDecodeQuery(0, 1, 2, q.data());
  const uint32_t kvh = opts.model.KvHeadForQuery(2);
  VectorSetView keys = ctx.kv().Keys(1, kvh);
  float sink_best = -1e30f;
  for (uint32_t s = 0; s < ctx.num_sinks(); ++s) {
    sink_best = std::max(sink_best, Dot(q.data(), keys.Vec(s), 64));
  }
  // The sink inner product sits above the critical band's ceiling (the §7.1
  // window observation the DIPRS prior relies on).
  const double band_top = opts.spec.crit_z_max * std::sqrt(64.0);
  EXPECT_GT(sink_best, band_top) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(InfinityBench, TaskSweep,
                         ::testing::Values("Retr.KV", "Retr.P", "Retr.N", "Code.D",
                                           "En.MC", "En.QA", "En.Sum", "Math.F"),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace alaya
