#include "src/common/visited_set.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

TEST(VisitedSetTest, VisitMarksOnce) {
  VisitedSet vs(10);
  vs.Reset();
  EXPECT_TRUE(vs.Visit(3));
  EXPECT_FALSE(vs.Visit(3));
  EXPECT_TRUE(vs.IsVisited(3));
  EXPECT_FALSE(vs.IsVisited(4));
}

TEST(VisitedSetTest, ResetClearsMarks) {
  VisitedSet vs(10);
  vs.Reset();
  vs.Visit(1);
  vs.Visit(2);
  vs.Reset();
  EXPECT_FALSE(vs.IsVisited(1));
  EXPECT_FALSE(vs.IsVisited(2));
  EXPECT_TRUE(vs.Visit(1));
}

TEST(VisitedSetTest, ResizeKeepsCapacity) {
  VisitedSet vs(4);
  vs.Resize(100);
  EXPECT_GE(vs.capacity(), 100u);
  vs.Reset();
  EXPECT_TRUE(vs.Visit(99));
  vs.Resize(50);  // Shrink requests are ignored.
  EXPECT_GE(vs.capacity(), 100u);
}

TEST(VisitedSetTest, ManyEpochsStayCorrect) {
  VisitedSet vs(8);
  for (int epoch = 0; epoch < 10000; ++epoch) {
    vs.Reset();
    EXPECT_FALSE(vs.IsVisited(epoch % 8));
    EXPECT_TRUE(vs.Visit(epoch % 8));
  }
}

}  // namespace
}  // namespace alaya
