#include "src/core/context_store.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alaya {
namespace {

std::unique_ptr<KvCache> MakeKv(const ModelConfig& m, size_t tokens, uint64_t seed) {
  auto kv = std::make_unique<KvCache>(m);
  Rng rng(seed);
  const size_t stride = m.num_kv_heads * m.head_dim;
  std::vector<float> k(stride), v(stride);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (size_t t = 0; t < tokens; ++t) {
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      kv->AppendToken(layer, k.data(), v.data());
    }
  }
  return kv;
}

std::vector<int32_t> Tokens(std::initializer_list<int32_t> l) { return l; }

TEST(ContextStoreTest, AddFindRemove) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  auto ctx = std::make_unique<Context>(0, Tokens({1, 2, 3}), MakeKv(m, 3, 1));
  const uint64_t id = store.Add(std::move(ctx));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.FindUnsafeForTest(id), nullptr);
  EXPECT_EQ(store.FindUnsafeForTest(id)->length(), 3u);
  EXPECT_EQ(store.FindUnsafeForTest(id + 100), nullptr);
  EXPECT_TRUE(store.Remove(id));
  EXPECT_FALSE(store.Remove(id));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ContextStoreTest, BestPrefixMatch) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({1, 2, 3, 4, 5}), MakeKv(m, 5, 2)));
  store.Add(std::make_unique<Context>(0, Tokens({1, 2, 9}), MakeKv(m, 3, 3)));

  auto match = store.BestPrefixMatch(Tokens({1, 2, 3, 7}));
  ASSERT_NE(match.context, nullptr);
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.context->length(), 5u);
  EXPECT_FALSE(match.full());

  match = store.BestPrefixMatch(Tokens({1, 2, 9, 9}));
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.context->length(), 3u);
  EXPECT_TRUE(match.full());

  match = store.BestPrefixMatch(Tokens({8, 8}));
  EXPECT_EQ(match.context, nullptr);
  EXPECT_EQ(match.matched, 0u);
}

TEST(ContextStoreTest, IdsAndTotals) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({1}), MakeKv(m, 1, 4)));
  store.Add(std::make_unique<Context>(0, Tokens({2, 3}), MakeKv(m, 2, 5)));
  EXPECT_EQ(store.Ids().size(), 2u);
  EXPECT_EQ(store.TotalKvBytes(), 3u * m.KvBytesPerToken());
}

TEST(ContextTest, BuildFineIndicesSharedMapping) {
  ModelConfig m = ModelConfig::Tiny();  // 2 layers, 4 q heads, 2 kv heads.
  Context ctx(1, std::vector<int32_t>(300, 7), MakeKv(m, 300, 6));
  IndexBuildOptions opts;
  opts.share_gqa_group = true;
  IndexBuildStats stats;
  ASSERT_TRUE(ctx.BuildFineIndices(opts, nullptr, &stats).ok());
  EXPECT_TRUE(ctx.HasFineIndices());
  EXPECT_EQ(stats.num_indices, m.num_layers * m.num_kv_heads);
  // Query heads 0,1 share KV head 0's index; heads 2,3 share KV head 1's.
  EXPECT_EQ(ctx.FineIndex(0, 0), ctx.FineIndex(0, 1));
  EXPECT_EQ(ctx.FineIndex(0, 2), ctx.FineIndex(0, 3));
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(0, 2));
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(1, 0));
  EXPECT_GT(ctx.IndexBytes(), 0u);
}

TEST(ContextTest, BuildFineIndicesUnshared) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, std::vector<int32_t>(200, 7), MakeKv(m, 200, 7));
  IndexBuildOptions opts;
  opts.share_gqa_group = false;
  ASSERT_TRUE(ctx.BuildFineIndices(opts, nullptr, nullptr).ok());
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(0, 1));
}

TEST(ContextTest, BuildCoarseIndices) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, std::vector<int32_t>(256, 7), MakeKv(m, 256, 8));
  CoarseIndexOptions copts;
  copts.block_size = 32;
  ASSERT_TRUE(ctx.BuildCoarseIndices(copts).ok());
  EXPECT_TRUE(ctx.HasCoarseIndices());
  const CoarseIndex* c = ctx.CoarseIdx(1, 1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_blocks(), 8u);
  EXPECT_EQ(ctx.CoarseIdx(0, 0)->size(), 256u);
}

TEST(ContextTest, MissingIndicesReturnNull) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, Tokens({1, 2}), MakeKv(m, 2, 9));
  EXPECT_EQ(ctx.FineIndex(0, 0), nullptr);
  EXPECT_EQ(ctx.CoarseIdx(0, 0), nullptr);
}

// --- Pending-context lifecycle: a reserved id is invisible to every lookup
// --- until the fully-built context is published (background Store).

TEST(ContextStoreTest, PendingIdInvisibleUntilPublished) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const std::vector<int32_t> tokens = {5, 6, 7};

  const uint64_t id = store.ReservePending();
  EXPECT_EQ(store.pending(), 1u);
  // Nothing observable yet: not by id, not by prefix, not in totals.
  EXPECT_EQ(store.FindUnsafeForTest(id), nullptr);
  EXPECT_EQ(store.FindShared(id), nullptr);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Ids().empty());
  EXPECT_EQ(store.BestPrefixMatch(tokens).context, nullptr);
  EXPECT_EQ(store.TotalKvBytes(), 0u);
  EXPECT_FALSE(store.Remove(id));  // Pending ids are not removable contexts.

  ASSERT_TRUE(
      store.Publish(id, std::make_unique<Context>(0, tokens, MakeKv(m, 3, 10))).ok());
  EXPECT_EQ(store.pending(), 0u);
  ASSERT_NE(store.FindUnsafeForTest(id), nullptr);
  EXPECT_EQ(store.FindUnsafeForTest(id)->id(), id);
  EXPECT_EQ(store.BestPrefixMatch(tokens).matched, 3u);
}

TEST(ContextStoreTest, ReservedIdsNeverCollideWithAdds) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t pending_id = store.ReservePending();
  const uint64_t added_id =
      store.Add(std::make_unique<Context>(0, Tokens({1}), MakeKv(m, 1, 11)));
  EXPECT_NE(pending_id, added_id);
  ASSERT_TRUE(
      store.Publish(pending_id, std::make_unique<Context>(0, Tokens({2}), MakeKv(m, 1, 12)))
          .ok());
  EXPECT_EQ(store.size(), 2u);
}

TEST(ContextStoreTest, PresetIdCollidingWithPendingIsReassigned) {
  // The serializer-restore path Adds contexts with preserved ids; one that
  // collides with an in-flight reservation must not be overwritten by the
  // later Publish — the store reassigns it instead.
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t pending_id = store.ReservePending();
  const uint64_t got =
      store.Add(std::make_unique<Context>(pending_id, Tokens({9}), MakeKv(m, 1, 14)));
  EXPECT_NE(got, pending_id);
  ASSERT_TRUE(
      store.Publish(pending_id, std::make_unique<Context>(0, Tokens({8}), MakeKv(m, 1, 15)))
          .ok());
  EXPECT_EQ(store.FindUnsafeForTest(pending_id)->tokens(), Tokens({8}));
  EXPECT_EQ(store.FindUnsafeForTest(got)->tokens(), Tokens({9}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ContextStoreTest, AbortPendingDropsReservation) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t id = store.ReservePending();
  EXPECT_TRUE(store.AbortPending(id));
  EXPECT_FALSE(store.AbortPending(id));
  EXPECT_EQ(store.pending(), 0u);
  // Publishing an aborted (or never-reserved) id is refused.
  EXPECT_EQ(store.Publish(id, std::make_unique<Context>(0, Tokens({3}), MakeKv(m, 1, 13)))
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.size(), 0u);
}

// --- Prefix-index (token trie) coherence: every path that changes context
// --- visibility must keep the trie in lockstep, or prefix lookups would
// --- return ghosts / miss live contexts.

TEST(ContextStoreTest, PrefixIndexStaysCoherentThroughAddRemove) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t a =
      store.Add(std::make_unique<Context>(0, Tokens({1, 2, 3, 4}), MakeKv(m, 4, 20)));
  const uint64_t b =
      store.Add(std::make_unique<Context>(0, Tokens({1, 2, 7}), MakeKv(m, 3, 21)));
  EXPECT_GT(store.PrefixIndexNodes(), 0u);

  // b wins past the shared stem...
  EXPECT_EQ(store.BestPrefixMatch(Tokens({1, 2, 7, 9})).context->id(), b);
  // ...and stops winning the moment it is removed: the longest survivor takes
  // over at its own (shorter) depth instead of a stale full-depth hit.
  EXPECT_TRUE(store.Remove(b));
  auto match = store.BestPrefixMatch(Tokens({1, 2, 7, 9}));
  ASSERT_NE(match.context, nullptr);
  EXPECT_EQ(match.context->id(), a);
  EXPECT_EQ(match.matched, 2u);

  EXPECT_TRUE(store.Remove(a));
  EXPECT_EQ(store.BestPrefixMatch(Tokens({1, 2, 3, 4})).context, nullptr);
  EXPECT_EQ(store.PrefixIndexNodes(), 0u);  // Fully pruned, nothing leaks.
}

TEST(ContextStoreTest, PrefixIndexSeesPublishButNeverPending) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const std::vector<int32_t> tokens = {6, 6, 6};
  const uint64_t id = store.ReservePending();
  // Reservation alone indexes nothing (probed via the cheap length probe the
  // admission path uses, which shares the trie walk).
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 0u);
  ASSERT_TRUE(
      store.Publish(id, std::make_unique<Context>(0, tokens, MakeKv(m, 3, 22))).ok());
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 3u);
  EXPECT_EQ(store.BestPrefixMatch(tokens).context->id(), id);
  // An aborted reservation never touched the index.
  const uint64_t dead = store.ReservePending();
  EXPECT_TRUE(store.AbortPending(dead));
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 3u);
}

TEST(ContextStoreTest, PrefixLengthProbeAgreesWithFullMatch) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({5, 4, 3, 2, 1}), MakeKv(m, 5, 23)));
  store.Add(std::make_unique<Context>(0, Tokens({5, 4, 9}), MakeKv(m, 3, 24)));
  for (const auto& query :
       {Tokens({5, 4, 3}), Tokens({5, 4, 9, 9}), Tokens({5}), Tokens({2}), Tokens({})}) {
    EXPECT_EQ(store.BestPrefixMatchLength(query), store.BestPrefixMatch(query).matched);
  }
}

// --- Incremental byte accounting: TotalKvBytes/TotalIndexBytes are now O(1)
// --- counters; every mutation path must keep them equal to a full scan.

void ExpectTotalsMatchScan(const ContextStore& store) {
  uint64_t kv = 0, index = 0;
  for (uint64_t id : store.Ids()) {
    if (std::shared_ptr<Context> ctx = store.FindShared(id)) {
      kv += ctx->kv().DeployedBytes();
      index += ctx->IndexBytes();
    }
  }
  EXPECT_EQ(store.TotalKvBytes(), kv);
  EXPECT_EQ(store.TotalIndexBytes(), index);
}

TEST(ContextStoreTest, ByteCountersMatchFullScanAcrossMutations) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  ExpectTotalsMatchScan(store);  // Empty.

  const uint64_t a =
      store.Add(std::make_unique<Context>(0, Tokens({1, 2, 3}), MakeKv(m, 3, 30)));
  ExpectTotalsMatchScan(store);

  // Publish path (late materialization) with fine indices built.
  const uint64_t pending = store.ReservePending();
  auto ctx = std::make_unique<Context>(0, std::vector<int32_t>(200, 4), MakeKv(m, 200, 31));
  ASSERT_TRUE(ctx->BuildFineIndices(IndexBuildOptions{}, nullptr, nullptr).ok());
  ASSERT_TRUE(store.Publish(pending, std::move(ctx)).ok());
  ExpectTotalsMatchScan(store);
  EXPECT_GT(store.TotalIndexBytes(), 0u);

  // Preset-id displacement: re-Adding id `a` replaces the old entry; the old
  // bytes must leave the counters.
  store.Add(std::make_unique<Context>(a, Tokens({7, 7}), MakeKv(m, 2, 32)));
  ExpectTotalsMatchScan(store);

  // Spill removes bytes from the totals but keeps the entry alive.
  auto detached = store.DetachForSpill(pending);
  ASSERT_NE(detached, nullptr);
  ExpectTotalsMatchScan(store);
  EXPECT_TRUE(store.IsSpilled(pending));

  // Restore puts them back.
  ASSERT_TRUE(store.RestoreSpilled(pending, std::move(detached)).ok());
  ExpectTotalsMatchScan(store);
  EXPECT_FALSE(store.IsSpilled(pending));

  EXPECT_TRUE(store.Remove(a));
  ExpectTotalsMatchScan(store);
  EXPECT_TRUE(store.Remove(pending));
  ExpectTotalsMatchScan(store);
  EXPECT_EQ(store.TotalKvBytes(), 0u);
  EXPECT_EQ(store.TotalIndexBytes(), 0u);
}

// --- Spill placeholders: a spilled context stays prefix-matchable (so the
// --- admission path can schedule a page-in) but is invisible to Find.

TEST(ContextStoreTest, SpilledPlaceholderSemantics) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const std::vector<int32_t> tokens = {1, 2, 3, 4, 5};
  const uint64_t id = store.Add(std::make_unique<Context>(0, tokens, MakeKv(m, 5, 40)));

  auto detached = store.DetachForSpill(id);
  ASSERT_NE(detached, nullptr);
  EXPECT_TRUE(store.IsSpilled(id));
  EXPECT_EQ(store.size(), 1u);  // Still counted: the id is live.
  EXPECT_EQ(store.resident(), 0u);
  EXPECT_EQ(store.spilled(), 1u);
  ASSERT_EQ(store.SpilledIds().size(), 1u);
  EXPECT_EQ(store.SpilledIds()[0], id);
  EXPECT_EQ(store.FindShared(id), nullptr);  // Payload gone...

  // ...but the prefix index still resolves to it, flagged spilled.
  auto match = store.BestPrefixMatch(Tokens({1, 2, 3, 9}));
  EXPECT_EQ(match.context, nullptr);
  EXPECT_EQ(match.ref, nullptr);
  EXPECT_TRUE(match.spilled);
  EXPECT_EQ(match.id, id);
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.length, 5u);
  auto probe = store.BestPrefixProbe(tokens);
  EXPECT_TRUE(probe.spilled);
  EXPECT_EQ(probe.context_id, id);
  EXPECT_EQ(probe.matched, 5u);

  // Double-detach is a no-op; restore with wrong tokens is refused.
  EXPECT_EQ(store.DetachForSpill(id), nullptr);
  auto wrong = std::make_shared<Context>(0, Tokens({9, 9}), MakeKv(m, 2, 41));
  EXPECT_EQ(store.RestoreSpilled(id, wrong).code(), StatusCode::kInvalidArgument);

  ASSERT_TRUE(store.RestoreSpilled(id, std::move(detached)).ok());
  EXPECT_FALSE(store.IsSpilled(id));
  EXPECT_EQ(store.resident(), 1u);
  match = store.BestPrefixMatch(tokens);
  ASSERT_NE(match.context, nullptr);
  EXPECT_EQ(match.context->id(), id);
  EXPECT_FALSE(match.spilled);
  // Restoring a resident context is refused.
  auto dup = std::make_shared<Context>(0, tokens, MakeKv(m, 5, 42));
  EXPECT_EQ(store.RestoreSpilled(id, dup).code(), StatusCode::kAborted);
}

TEST(ContextStoreTest, AddSpilledWarmStartPlaceholders) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  // Warm start installs placeholders with preserved ids, ahead of any Add.
  ASSERT_TRUE(store.AddSpilled(42, Tokens({3, 1, 4}), /*resident_device=*/1,
                               /*kv_bytes=*/1000, /*index_bytes=*/500)
                  .ok());
  EXPECT_TRUE(store.IsSpilled(42));
  EXPECT_EQ(store.TotalKvBytes(), 0u);  // Spilled bytes are not resident.
  auto probe = store.BestPrefixProbe(Tokens({3, 1, 4}));
  EXPECT_TRUE(probe.spilled);
  EXPECT_EQ(probe.context_id, 42u);
  EXPECT_EQ(probe.device, 1);  // Snapshot from the manifest.

  // Id collisions and id 0 are refused.
  EXPECT_EQ(store.AddSpilled(42, Tokens({5}), -1, 1, 1).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.AddSpilled(0, Tokens({5}), -1, 1, 1).code(),
            StatusCode::kInvalidArgument);

  // Fresh Adds never collide with the warm-started id.
  const uint64_t next =
      store.Add(std::make_unique<Context>(0, Tokens({8}), MakeKv(m, 1, 43)));
  EXPECT_GT(next, 42u);

  // A spilled placeholder is removable (e.g. manifest eviction).
  EXPECT_TRUE(store.Remove(42));
  EXPECT_EQ(store.BestPrefixProbe(Tokens({3, 1, 4})).matched, 0u);
}

}  // namespace
}  // namespace alaya
