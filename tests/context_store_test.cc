#include "src/core/context_store.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alaya {
namespace {

std::unique_ptr<KvCache> MakeKv(const ModelConfig& m, size_t tokens, uint64_t seed) {
  auto kv = std::make_unique<KvCache>(m);
  Rng rng(seed);
  const size_t stride = m.num_kv_heads * m.head_dim;
  std::vector<float> k(stride), v(stride);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (size_t t = 0; t < tokens; ++t) {
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      kv->AppendToken(layer, k.data(), v.data());
    }
  }
  return kv;
}

std::vector<int32_t> Tokens(std::initializer_list<int32_t> l) { return l; }

TEST(ContextStoreTest, AddFindRemove) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  auto ctx = std::make_unique<Context>(0, Tokens({1, 2, 3}), MakeKv(m, 3, 1));
  const uint64_t id = store.Add(std::move(ctx));
  EXPECT_EQ(store.size(), 1u);
  ASSERT_NE(store.Find(id), nullptr);
  EXPECT_EQ(store.Find(id)->length(), 3u);
  EXPECT_EQ(store.Find(id + 100), nullptr);
  EXPECT_TRUE(store.Remove(id));
  EXPECT_FALSE(store.Remove(id));
  EXPECT_EQ(store.size(), 0u);
}

TEST(ContextStoreTest, BestPrefixMatch) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({1, 2, 3, 4, 5}), MakeKv(m, 5, 2)));
  store.Add(std::make_unique<Context>(0, Tokens({1, 2, 9}), MakeKv(m, 3, 3)));

  auto match = store.BestPrefixMatch(Tokens({1, 2, 3, 7}));
  ASSERT_NE(match.context, nullptr);
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.context->length(), 5u);
  EXPECT_FALSE(match.full());

  match = store.BestPrefixMatch(Tokens({1, 2, 9, 9}));
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.context->length(), 3u);
  EXPECT_TRUE(match.full());

  match = store.BestPrefixMatch(Tokens({8, 8}));
  EXPECT_EQ(match.context, nullptr);
  EXPECT_EQ(match.matched, 0u);
}

TEST(ContextStoreTest, IdsAndTotals) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({1}), MakeKv(m, 1, 4)));
  store.Add(std::make_unique<Context>(0, Tokens({2, 3}), MakeKv(m, 2, 5)));
  EXPECT_EQ(store.Ids().size(), 2u);
  EXPECT_EQ(store.TotalKvBytes(), 3u * m.KvBytesPerToken());
}

TEST(ContextTest, BuildFineIndicesSharedMapping) {
  ModelConfig m = ModelConfig::Tiny();  // 2 layers, 4 q heads, 2 kv heads.
  Context ctx(1, std::vector<int32_t>(300, 7), MakeKv(m, 300, 6));
  IndexBuildOptions opts;
  opts.share_gqa_group = true;
  IndexBuildStats stats;
  ASSERT_TRUE(ctx.BuildFineIndices(opts, nullptr, &stats).ok());
  EXPECT_TRUE(ctx.HasFineIndices());
  EXPECT_EQ(stats.num_indices, m.num_layers * m.num_kv_heads);
  // Query heads 0,1 share KV head 0's index; heads 2,3 share KV head 1's.
  EXPECT_EQ(ctx.FineIndex(0, 0), ctx.FineIndex(0, 1));
  EXPECT_EQ(ctx.FineIndex(0, 2), ctx.FineIndex(0, 3));
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(0, 2));
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(1, 0));
  EXPECT_GT(ctx.IndexBytes(), 0u);
}

TEST(ContextTest, BuildFineIndicesUnshared) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, std::vector<int32_t>(200, 7), MakeKv(m, 200, 7));
  IndexBuildOptions opts;
  opts.share_gqa_group = false;
  ASSERT_TRUE(ctx.BuildFineIndices(opts, nullptr, nullptr).ok());
  EXPECT_NE(ctx.FineIndex(0, 0), ctx.FineIndex(0, 1));
}

TEST(ContextTest, BuildCoarseIndices) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, std::vector<int32_t>(256, 7), MakeKv(m, 256, 8));
  CoarseIndexOptions copts;
  copts.block_size = 32;
  ASSERT_TRUE(ctx.BuildCoarseIndices(copts).ok());
  EXPECT_TRUE(ctx.HasCoarseIndices());
  const CoarseIndex* c = ctx.CoarseIdx(1, 1);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->num_blocks(), 8u);
  EXPECT_EQ(ctx.CoarseIdx(0, 0)->size(), 256u);
}

TEST(ContextTest, MissingIndicesReturnNull) {
  ModelConfig m = ModelConfig::Tiny();
  Context ctx(1, Tokens({1, 2}), MakeKv(m, 2, 9));
  EXPECT_EQ(ctx.FineIndex(0, 0), nullptr);
  EXPECT_EQ(ctx.CoarseIdx(0, 0), nullptr);
}

// --- Pending-context lifecycle: a reserved id is invisible to every lookup
// --- until the fully-built context is published (background Store).

TEST(ContextStoreTest, PendingIdInvisibleUntilPublished) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const std::vector<int32_t> tokens = {5, 6, 7};

  const uint64_t id = store.ReservePending();
  EXPECT_EQ(store.pending(), 1u);
  // Nothing observable yet: not by id, not by prefix, not in totals.
  EXPECT_EQ(store.Find(id), nullptr);
  EXPECT_EQ(store.FindShared(id), nullptr);
  EXPECT_EQ(store.size(), 0u);
  EXPECT_TRUE(store.Ids().empty());
  EXPECT_EQ(store.BestPrefixMatch(tokens).context, nullptr);
  EXPECT_EQ(store.TotalKvBytes(), 0u);
  EXPECT_FALSE(store.Remove(id));  // Pending ids are not removable contexts.

  ASSERT_TRUE(
      store.Publish(id, std::make_unique<Context>(0, tokens, MakeKv(m, 3, 10))).ok());
  EXPECT_EQ(store.pending(), 0u);
  ASSERT_NE(store.Find(id), nullptr);
  EXPECT_EQ(store.Find(id)->id(), id);
  EXPECT_EQ(store.BestPrefixMatch(tokens).matched, 3u);
}

TEST(ContextStoreTest, ReservedIdsNeverCollideWithAdds) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t pending_id = store.ReservePending();
  const uint64_t added_id =
      store.Add(std::make_unique<Context>(0, Tokens({1}), MakeKv(m, 1, 11)));
  EXPECT_NE(pending_id, added_id);
  ASSERT_TRUE(
      store.Publish(pending_id, std::make_unique<Context>(0, Tokens({2}), MakeKv(m, 1, 12)))
          .ok());
  EXPECT_EQ(store.size(), 2u);
}

TEST(ContextStoreTest, PresetIdCollidingWithPendingIsReassigned) {
  // The serializer-restore path Adds contexts with preserved ids; one that
  // collides with an in-flight reservation must not be overwritten by the
  // later Publish — the store reassigns it instead.
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t pending_id = store.ReservePending();
  const uint64_t got =
      store.Add(std::make_unique<Context>(pending_id, Tokens({9}), MakeKv(m, 1, 14)));
  EXPECT_NE(got, pending_id);
  ASSERT_TRUE(
      store.Publish(pending_id, std::make_unique<Context>(0, Tokens({8}), MakeKv(m, 1, 15)))
          .ok());
  EXPECT_EQ(store.Find(pending_id)->tokens(), Tokens({8}));
  EXPECT_EQ(store.Find(got)->tokens(), Tokens({9}));
  EXPECT_EQ(store.size(), 2u);
}

TEST(ContextStoreTest, AbortPendingDropsReservation) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t id = store.ReservePending();
  EXPECT_TRUE(store.AbortPending(id));
  EXPECT_FALSE(store.AbortPending(id));
  EXPECT_EQ(store.pending(), 0u);
  // Publishing an aborted (or never-reserved) id is refused.
  EXPECT_EQ(store.Publish(id, std::make_unique<Context>(0, Tokens({3}), MakeKv(m, 1, 13)))
                .code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.size(), 0u);
}

// --- Prefix-index (token trie) coherence: every path that changes context
// --- visibility must keep the trie in lockstep, or prefix lookups would
// --- return ghosts / miss live contexts.

TEST(ContextStoreTest, PrefixIndexStaysCoherentThroughAddRemove) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const uint64_t a =
      store.Add(std::make_unique<Context>(0, Tokens({1, 2, 3, 4}), MakeKv(m, 4, 20)));
  const uint64_t b =
      store.Add(std::make_unique<Context>(0, Tokens({1, 2, 7}), MakeKv(m, 3, 21)));
  EXPECT_GT(store.PrefixIndexNodes(), 0u);

  // b wins past the shared stem...
  EXPECT_EQ(store.BestPrefixMatch(Tokens({1, 2, 7, 9})).context->id(), b);
  // ...and stops winning the moment it is removed: the longest survivor takes
  // over at its own (shorter) depth instead of a stale full-depth hit.
  EXPECT_TRUE(store.Remove(b));
  auto match = store.BestPrefixMatch(Tokens({1, 2, 7, 9}));
  ASSERT_NE(match.context, nullptr);
  EXPECT_EQ(match.context->id(), a);
  EXPECT_EQ(match.matched, 2u);

  EXPECT_TRUE(store.Remove(a));
  EXPECT_EQ(store.BestPrefixMatch(Tokens({1, 2, 3, 4})).context, nullptr);
  EXPECT_EQ(store.PrefixIndexNodes(), 0u);  // Fully pruned, nothing leaks.
}

TEST(ContextStoreTest, PrefixIndexSeesPublishButNeverPending) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  const std::vector<int32_t> tokens = {6, 6, 6};
  const uint64_t id = store.ReservePending();
  // Reservation alone indexes nothing (probed via the cheap length probe the
  // admission path uses, which shares the trie walk).
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 0u);
  ASSERT_TRUE(
      store.Publish(id, std::make_unique<Context>(0, tokens, MakeKv(m, 3, 22))).ok());
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 3u);
  EXPECT_EQ(store.BestPrefixMatch(tokens).context->id(), id);
  // An aborted reservation never touched the index.
  const uint64_t dead = store.ReservePending();
  EXPECT_TRUE(store.AbortPending(dead));
  EXPECT_EQ(store.BestPrefixMatchLength(tokens), 3u);
}

TEST(ContextStoreTest, PrefixLengthProbeAgreesWithFullMatch) {
  ContextStore store;
  ModelConfig m = ModelConfig::Tiny();
  store.Add(std::make_unique<Context>(0, Tokens({5, 4, 3, 2, 1}), MakeKv(m, 5, 23)));
  store.Add(std::make_unique<Context>(0, Tokens({5, 4, 9}), MakeKv(m, 3, 24)));
  for (const auto& query :
       {Tokens({5, 4, 3}), Tokens({5, 4, 9, 9}), Tokens({5}), Tokens({2}), Tokens({})}) {
    EXPECT_EQ(store.BestPrefixMatchLength(query), store.BestPrefixMatch(query).matched);
  }
}

}  // namespace
}  // namespace alaya
