#include "src/index/hnsw.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

using testutil::BruteTopK;
using testutil::PlantedMips;

VectorSet RandomUnitSet(size_t n, size_t d, uint64_t seed) {
  VectorSet set(d);
  Rng rng(seed);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    NormalizeInPlace(v.data(), d);
    set.Append(v.data());
  }
  return set;
}

double RecallAtK(const Hnsw& index, VectorSetView data, size_t k, size_t ef,
                 size_t num_queries, uint64_t seed) {
  Rng rng(seed);
  std::vector<float> q(data.d);
  size_t hit = 0, total = 0;
  for (size_t t = 0; t < num_queries; ++t) {
    rng.FillGaussian(q.data(), data.d);
    SearchResult res;
    EXPECT_TRUE(index.SearchTopK(q.data(), TopKParams{k, ef}, &res).ok());
    auto exact = BruteTopK(data, q.data(), k);
    std::vector<bool> got(data.n, false);
    for (const auto& h : res.hits) got[h.id] = true;
    for (const auto& e : exact) {
      ++total;
      if (got[e.id]) ++hit;
    }
  }
  return static_cast<double>(hit) / static_cast<double>(total);
}

TEST(HnswTest, InnerProductRecall) {
  VectorSet set = RandomUnitSet(2000, 24, 1);
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  EXPECT_EQ(index.size(), 2000u);
  EXPECT_GE(RecallAtK(index, set.View(), 10, 128, 20, 2), 0.85);
}

TEST(HnswTest, L2MetricRecall) {
  VectorSet set = RandomUnitSet(2000, 24, 3);
  HnswOptions opts;
  opts.metric = GraphMetric::kL2;
  Hnsw index(set.View(), opts);
  ASSERT_TRUE(index.Build().ok());
  // L2 search: compare against brute-force by negated distance.
  Rng rng(4);
  std::vector<float> q(24);
  size_t hit = 0, total = 0;
  for (int t = 0; t < 20; ++t) {
    rng.FillGaussian(q.data(), 24);
    SearchResult res;
    ASSERT_TRUE(index.SearchTopK(q.data(), TopKParams{10, 128}, &res).ok());
    std::vector<ScoredId> exact;
    for (uint32_t i = 0; i < 2000; ++i) {
      exact.push_back({i, -L2Sq(q.data(), set.Vec(i), 24)});
    }
    SortByScoreDesc(&exact);
    exact.resize(10);
    std::vector<bool> got(2000, false);
    for (const auto& h : res.hits) got[h.id] = true;
    for (const auto& e : exact) {
      ++total;
      if (got[e.id]) ++hit;
    }
  }
  EXPECT_GE(static_cast<double>(hit) / total, 0.85);
}

TEST(HnswTest, IncrementalAppendKeepsSearchable) {
  VectorSet set = RandomUnitSet(500, 16, 5);
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  // Grow the set and append.
  Rng rng(6);
  std::vector<float> v(16);
  for (int i = 0; i < 100; ++i) {
    rng.FillGaussian(v.data(), 16);
    NormalizeInPlace(v.data(), 16);
    set.Append(v.data());
  }
  ASSERT_TRUE(index.AppendNewVectors(set.View()).ok());
  EXPECT_EQ(index.size(), 600u);
  EXPECT_GE(RecallAtK(index, set.View(), 10, 128, 10, 7), 0.8);
}

TEST(HnswTest, DiprOnPlantedData) {
  PlantedMips data(2000, 32, 80, 8);
  Hnsw index(data.keys.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  SearchResult res;
  DiprParams params;
  params.beta = 11.f;
  ASSERT_TRUE(index.SearchDipr(data.query.data(), params, &res).ok());
  EXPECT_GE(data.Recall(res.hits), 0.75);
}

TEST(HnswTest, DiprRequiresInnerProductMetric) {
  VectorSet set = RandomUnitSet(100, 8, 9);
  HnswOptions opts;
  opts.metric = GraphMetric::kL2;
  Hnsw index(set.View(), opts);
  ASSERT_TRUE(index.Build().ok());
  SearchResult res;
  DiprParams params;
  std::vector<float> q(8, 1.f);
  EXPECT_EQ(index.SearchDipr(q.data(), params, &res).code(),
            StatusCode::kNotSupported);
}

TEST(HnswTest, EmptyIndexSearches) {
  VectorSet set(8);
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  std::vector<float> q(8, 1.f);
  SearchResult res;
  EXPECT_TRUE(index.SearchTopK(q.data(), TopKParams{5, 0}, &res).ok());
  EXPECT_TRUE(res.hits.empty());
}

TEST(HnswTest, SingleElement) {
  VectorSet set(8);
  std::vector<float> v(8, 1.f);
  set.Append(v.data());
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  SearchResult res;
  ASSERT_TRUE(index.SearchTopK(v.data(), TopKParams{5, 0}, &res).ok());
  ASSERT_EQ(res.hits.size(), 1u);
  EXPECT_EQ(res.hits[0].id, 0u);
}

TEST(HnswTest, FilteredSearchRespectsPredicate) {
  VectorSet set = RandomUnitSet(500, 16, 10);
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  std::vector<float> q(16, 0.5f);
  IdFilter filter;
  filter.prefix_len = 100;
  SearchResult res;
  ASSERT_TRUE(index.SearchTopKFiltered(q.data(), TopKParams{20, 64}, filter, &res).ok());
  for (const auto& h : res.hits) EXPECT_LT(h.id, 100u);
}

TEST(HnswTest, MemoryBytesPositiveAfterBuild) {
  VectorSet set = RandomUnitSet(300, 16, 11);
  Hnsw index(set.View(), HnswOptions{});
  ASSERT_TRUE(index.Build().ok());
  EXPECT_GT(index.MemoryBytes(), 0u);
  EXPECT_GE(index.max_level(), 0);
}

}  // namespace
}  // namespace alaya
