#include "src/llm/qkv_generator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/vec_math.h"

namespace alaya {
namespace {

SyntheticContextOptions SmallOptions(const std::string& task = "En.MC",
                                     double scale = 0.03) {
  SyntheticContextOptions opts;
  opts.model = ModelConfig{2, 4, 2, 64, 2};
  opts.spec = FindTask(InfinityBenchSuite(scale), task);
  return opts;
}

TEST(QkvGeneratorTest, GeneratesRequestedGeometry) {
  auto opts = SmallOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  EXPECT_EQ(ctx.kv().NumTokens(0), opts.spec.context_tokens);
  EXPECT_EQ(ctx.kv().NumTokens(1), opts.spec.context_tokens);
  EXPECT_EQ(ctx.tokens().size(), opts.spec.context_tokens);
  EXPECT_EQ(ctx.kv().Keys(0, 0).d, 64u);
}

TEST(QkvGeneratorTest, DeterministicForSameSeed) {
  auto opts = SmallOptions();
  SyntheticContext a(opts), b(opts);
  ASSERT_TRUE(a.Generate().ok());
  ASSERT_TRUE(b.Generate().ok());
  for (uint32_t i = 0; i < 50; ++i) {
    for (uint32_t j = 0; j < 64; ++j) {
      EXPECT_EQ(a.kv().Keys(1, 0).Vec(i)[j], b.kv().Keys(1, 0).Vec(i)[j]);
    }
  }
  EXPECT_EQ(a.tokens(), b.tokens());
  std::vector<float> qa(64), qb(64);
  a.MakeDecodeQuery(3, 1, 2, qa.data());
  b.MakeDecodeQuery(3, 1, 2, qb.data());
  for (int j = 0; j < 64; ++j) EXPECT_EQ(qa[j], qb[j]);
}

TEST(QkvGeneratorTest, DifferentSeedsDiffer) {
  auto opts = SmallOptions();
  SyntheticContext a(opts);
  opts.spec.seed += 1;
  SyntheticContext b(opts);
  ASSERT_TRUE(a.Generate().ok());
  ASSERT_TRUE(b.Generate().ok());
  EXPECT_NE(a.tokens(), b.tokens());
  EXPECT_NE(a.kv().Keys(0, 0).Vec(10)[0], b.kv().Keys(0, 0).Vec(10)[0]);
}

TEST(QkvGeneratorTest, CriticalLogitsLandInTaskBand) {
  auto opts = SmallOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  const size_t d = 64;
  const double sqrt_d = std::sqrt(64.0);
  std::vector<float> q(d);
  size_t checked = 0;
  for (uint32_t h = 0; h < 4; ++h) {
    ctx.MakeDecodeQuery(0, 1, h, q.data());
    const uint32_t kvh = opts.model.KvHeadForQuery(h);
    for (uint32_t id : ctx.CriticalSet(0, 1, h)) {
      const double z =
          Dot(q.data(), ctx.kv().Keys(1, kvh).Vec(id), d) / sqrt_d;
      // Band plus slack: the query's sink component projects onto critical
      // keys with sigma ~ sink_z/sqrt(d) (soft band, like real logits).
      EXPECT_GT(z, opts.spec.crit_z_min - 5.5) << "head " << h << " id " << id;
      EXPECT_LT(z, opts.spec.crit_z_max + 5.5);
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);
}

TEST(QkvGeneratorTest, MaxInnerProductKeyIsInWindow) {
  // The §7.1 observation: the max-IP key lives among the initial tokens
  // (attention sinks) the vast majority of the time. The paper measured ~98%
  // on math_find, a small-critical-set task; use its profile here.
  auto opts = SmallOptions("Math.F", 0.1);
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  const size_t d = 64;
  std::vector<float> q(d);
  size_t in_window = 0, total = 0;
  for (size_t step = 0; step < 4; ++step) {
    for (uint32_t h = 0; h < 4; ++h) {
      ctx.MakeDecodeQuery(step, 0, h, q.data());
      const uint32_t kvh = opts.model.KvHeadForQuery(h);
      VectorSetView keys = ctx.kv().Keys(0, kvh);
      float best = -1e30f;
      uint32_t best_id = 0;
      for (uint32_t i = 0; i < keys.n; ++i) {
        const float ip = Dot(q.data(), keys.Vec(i), d);
        if (ip > best) {
          best = ip;
          best_id = i;
        }
      }
      ++total;
      if (best_id < ctx.num_sinks()) ++in_window;
    }
  }
  EXPECT_GE(static_cast<double>(in_window) / total, 0.9);
}

TEST(QkvGeneratorTest, TopicsAreDisjoint) {
  auto opts = SmallOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  std::set<uint32_t> seen;
  for (uint32_t t = 0; t < 8; ++t) {
    for (uint32_t id : ctx.TopicMembers(0, 0, t)) {
      EXPECT_TRUE(seen.insert(id).second) << "token " << id << " in two topics";
      EXPECT_GE(id, ctx.num_sinks());
      EXPECT_LT(id, ctx.num_tokens());
    }
  }
}

TEST(QkvGeneratorTest, Layer0HasLargerCriticalSets) {
  auto opts = SmallOptions();
  opts.spec.layer0_boost = 8.0;
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  double sum0 = 0, sum1 = 0;
  for (uint32_t h = 0; h < 2; ++h) {
    sum0 += ctx.HeadFactor(0, h);
    sum1 += ctx.HeadFactor(1, h);
  }
  // With the boost, layer 0 should dominate on average (same seeds modulo
  // layer mixing; allow generous slack by checking the boost effect).
  EXPECT_GT(sum0, sum1 * 0.8);
}

TEST(QkvGeneratorTest, OracleAlignsWithPlantedSetAttention) {
  auto opts = SmallOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  std::vector<float> oracle(64);
  ctx.OracleOutput(0, 1, 0, oracle.data());
  EXPECT_GT(Norm(oracle.data(), 64), 1e-4f);
}

TEST(QkvGeneratorTest, TrainingQueriesCoverHeads) {
  auto opts = SmallOptions();
  SyntheticContext ctx(opts);
  ASSERT_TRUE(ctx.Generate().ok());
  auto samples = ctx.MakeTrainingQueries(32);
  for (uint32_t layer = 0; layer < 2; ++layer) {
    EXPECT_EQ(samples->NumSamples(layer), 32u);
  }
  // Training queries differ from decode queries (jitter), but share scale.
  std::vector<float> dq(64);
  ctx.MakeDecodeQuery(0, 0, 0, dq.data());
  VectorSetView tq = samples->View(0, 0);
  EXPECT_NEAR(Norm(tq.Vec(0), 64) / Norm(dq.data(), 64), 1.0, 0.2);
}

TEST(QkvGeneratorTest, TooShortContextRejected) {
  auto opts = SmallOptions();
  opts.spec.context_tokens = 4;
  SyntheticContext ctx(opts);
  EXPECT_FALSE(ctx.Generate().ok());
}

TEST(WorkloadsTest, SuitesArePopulated) {
  auto inf = InfinityBenchSuite(0.125);
  EXPECT_EQ(inf.size(), 8u);
  std::set<std::string> names;
  for (const auto& s : inf) {
    names.insert(s.name);
    EXPECT_GT(s.context_tokens, 1000u);
    EXPECT_GT(s.critical_base, 0.0);
    EXPECT_LT(s.crit_z_min, s.crit_z_max);
    EXPECT_GT(s.sink_z, s.crit_z_max);
  }
  EXPECT_TRUE(names.count("Retr.KV"));
  EXPECT_TRUE(names.count("Math.F"));

  auto lb = LongBenchSuite(1.0);
  EXPECT_EQ(lb.size(), 6u);
  // Table 3: planted k / context ratio matches the paper's proportions.
  const WorkloadSpec qasper = FindTask(lb, "Qasper");
  EXPECT_NEAR(qasper.critical_base / qasper.context_tokens, 0.0967, 0.01);
  const WorkloadSpec trivia = FindTask(lb, "TriviaQA");
  EXPECT_NEAR(trivia.critical_base / trivia.context_tokens, 0.0024, 0.001);
}

TEST(WorkloadsTest, ContextScaleApplies) {
  auto full = InfinityBenchSuite(1.0);
  auto eighth = InfinityBenchSuite(0.125);
  for (size_t i = 0; i < full.size(); ++i) {
    EXPECT_NEAR(static_cast<double>(eighth[i].context_tokens) /
                    static_cast<double>(full[i].context_tokens),
                0.125, 0.01);
  }
}

}  // namespace
}  // namespace alaya
