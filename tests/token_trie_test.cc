// TokenTrie: the compressed-trie prefix index behind ContextStore's
// BestPrefixMatch. The contract under test is exact equivalence with the
// linear scan it replaced — same matched length, same winner on ties (lowest
// id among the maxima) — plus structural properties (path compression,
// pruning) a randomized add/remove churn must preserve.
#include "src/core/token_trie.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/common/rng.h"

namespace alaya {
namespace {

using Tokens = std::vector<int32_t>;

/// The replaced implementation, kept as the test oracle: first (lowest) id
/// achieving the strictly-greatest common prefix.
TokenTrie::Best ReferenceBest(const std::map<uint64_t, Tokens>& stored,
                              const Tokens& query) {
  TokenTrie::Best best;
  for (const auto& [id, tokens] : stored) {
    const size_t limit = std::min(tokens.size(), query.size());
    size_t m = 0;
    while (m < limit && tokens[m] == query[m]) ++m;
    if (m > best.matched) {
      best.matched = m;
      best.id = id;
    }
  }
  return best;
}

TEST(TokenTrieTest, EmptyTrieMatchesNothing) {
  TokenTrie trie;
  EXPECT_EQ(trie.BestPrefix(Tokens{1, 2, 3}).matched, 0u);
  EXPECT_EQ(trie.BestPrefix(Tokens{}).matched, 0u);
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.node_count(), 0u);
}

TEST(TokenTrieTest, ExactAndPartialMatches) {
  TokenTrie trie;
  trie.Insert(1, Tokens{1, 2, 3, 4, 5});
  trie.Insert(2, Tokens{1, 2, 9});

  // Diverges after {1,2,3}: only id 1's sequence carries the third token.
  auto m = trie.BestPrefix(Tokens{1, 2, 3, 7});
  EXPECT_EQ(m.matched, 3u);
  EXPECT_EQ(m.id, 1u);

  // Query runs past a stored sequence: match caps at its length.
  m = trie.BestPrefix(Tokens{1, 2, 9, 9});
  EXPECT_EQ(m.matched, 3u);
  EXPECT_EQ(m.id, 2u);

  // Query is a strict prefix of stored sequences (stops mid-edge).
  m = trie.BestPrefix(Tokens{1, 2});
  EXPECT_EQ(m.matched, 2u);
  EXPECT_EQ(m.id, 1u);  // Both pass through; lowest id wins.

  EXPECT_EQ(trie.BestPrefix(Tokens{8, 8}).matched, 0u);
}

TEST(TokenTrieTest, TieBreaksToLowestId) {
  TokenTrie trie;
  trie.Insert(7, Tokens{4, 5, 6});
  trie.Insert(3, Tokens{4, 5, 6});  // Identical sequence, lower id.
  trie.Insert(9, Tokens{4, 5});     // Shorter, also on the path.
  EXPECT_EQ(trie.BestPrefix(Tokens{4, 5, 6}).id, 3u);
  EXPECT_EQ(trie.BestPrefix(Tokens{4, 5}).id, 3u);  // All three tie at 2.
  trie.Erase(3, Tokens{4, 5, 6});
  EXPECT_EQ(trie.BestPrefix(Tokens{4, 5, 6}).id, 7u);
}

TEST(TokenTrieTest, PathCompressionBoundsNodes) {
  // One long sequence = one node regardless of length; a divergence adds at
  // most two (the split point's two branches).
  TokenTrie trie;
  Tokens longseq(10'000);
  for (size_t i = 0; i < longseq.size(); ++i) longseq[i] = static_cast<int32_t>(i);
  trie.Insert(1, longseq);
  EXPECT_EQ(trie.node_count(), 1u);

  Tokens forked = longseq;
  forked[5'000] = -1;
  trie.Insert(2, forked);
  EXPECT_EQ(trie.node_count(), 3u);  // Shared stem + two suffix branches.

  // A sequence ending exactly at an existing boundary adds no node.
  trie.Insert(3, Tokens(longseq.begin(), longseq.begin() + 5'000));
  EXPECT_EQ(trie.node_count(), 3u);
}

TEST(TokenTrieTest, ErasePrunesDeadBranches) {
  TokenTrie trie;
  trie.Insert(1, Tokens{1, 2, 3});
  trie.Insert(2, Tokens{1, 2, 4, 5});
  EXPECT_EQ(trie.node_count(), 3u);

  EXPECT_TRUE(trie.Erase(2, Tokens{1, 2, 4, 5}));
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.BestPrefix(Tokens{1, 2, 4, 5}).matched, 2u);
  EXPECT_EQ(trie.BestPrefix(Tokens{1, 2, 3}).matched, 3u);

  // Erasing the last sequence empties the trie completely.
  EXPECT_TRUE(trie.Erase(1, Tokens{1, 2, 3}));
  EXPECT_EQ(trie.size(), 0u);
  EXPECT_EQ(trie.node_count(), 0u);
  EXPECT_EQ(trie.BestPrefix(Tokens{1, 2, 3}).matched, 0u);
}

TEST(TokenTrieTest, EraseRejectsUnknownPaths) {
  TokenTrie trie;
  trie.Insert(1, Tokens{1, 2, 3});
  EXPECT_FALSE(trie.Erase(1, Tokens{1, 2}));     // Wrong sequence for the id.
  EXPECT_FALSE(trie.Erase(2, Tokens{1, 2, 3}));  // Wrong id for the sequence.
  EXPECT_FALSE(trie.Erase(1, Tokens{9}));        // Path not present at all.
  EXPECT_EQ(trie.size(), 1u);
  EXPECT_EQ(trie.BestPrefix(Tokens{1, 2, 3}).matched, 3u);  // Untouched.
}

TEST(TokenTrieTest, RandomizedChurnMatchesLinearScan) {
  // Deterministic fuzz: interleaved inserts and erases of short random-ish
  // sequences over a tiny alphabet (maximizing shared prefixes and edge
  // splits), checking every query shape against the linear-scan oracle.
  Rng rng(0xA1AFA);
  TokenTrie trie;
  std::map<uint64_t, Tokens> reference;
  uint64_t next_id = 1;

  for (int round = 0; round < 400; ++round) {
    const bool remove = !reference.empty() && rng.Uniform() < 0.35;
    if (remove) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(reference.size())));
      ASSERT_TRUE(trie.Erase(it->first, it->second));
      reference.erase(it);
    } else {
      Tokens t(1 + rng.UniformInt(8));
      for (auto& tok : t) tok = static_cast<int32_t>(rng.UniformInt(3));
      const uint64_t id = next_id++;
      trie.Insert(id, t);
      reference.emplace(id, std::move(t));
    }
    ASSERT_EQ(trie.size(), reference.size());

    // Probe: a fresh random query, plus a mutated copy of a stored sequence
    // (guaranteeing deep partial matches).
    std::vector<Tokens> queries;
    Tokens q(1 + rng.UniformInt(10));
    for (auto& tok : q) tok = static_cast<int32_t>(rng.UniformInt(3));
    queries.push_back(std::move(q));
    if (!reference.empty()) {
      auto it = reference.begin();
      std::advance(it, static_cast<long>(rng.UniformInt(reference.size())));
      Tokens mutated = it->second;
      mutated.push_back(static_cast<int32_t>(rng.UniformInt(3)));
      if (rng.Uniform() < 0.5 && !mutated.empty()) {
        mutated[rng.UniformInt(mutated.size())] = 7;  // Off-alphabet fork.
      }
      queries.push_back(std::move(mutated));
    }
    for (const Tokens& query : queries) {
      const TokenTrie::Best got = trie.BestPrefix(query);
      const TokenTrie::Best want = ReferenceBest(reference, query);
      ASSERT_EQ(got.matched, want.matched) << "round " << round;
      ASSERT_EQ(got.id, want.id) << "round " << round;
    }
  }
}

}  // namespace
}  // namespace alaya
