#include "src/core/alaya_db.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alaya {
namespace {

struct DbFixture {
  ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  DbOptions options;

  DbFixture() {
    options.model = model;
    options.build_fine_indices = true;
  }

  std::unique_ptr<KvCache> MakeKv(size_t tokens, uint64_t seed) {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  std::vector<int32_t> TokenRange(int32_t start, size_t count) {
    std::vector<int32_t> t(count);
    for (size_t i = 0; i < count; ++i) t[i] = start + static_cast<int32_t>(i);
    return t;
  }
};

TEST(AlayaDbTest, ImportThenFullReuse) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  auto tokens = fx.TokenRange(100, 200);
  auto imported = db.Import(tokens, fx.MakeKv(200, 1));
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();
  EXPECT_EQ(db.contexts().size(), 1u);

  // A prompt extending the stored context reuses all 200 tokens.
  auto prompt = fx.TokenRange(100, 210);
  auto created = db.CreateSession(prompt);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, 200u);
  EXPECT_EQ(created.value().truncated_prompt.size(), 10u);
  EXPECT_EQ(created.value().context_id, imported.value());
  EXPECT_FALSE(created.value().session->partial_reuse());
}

TEST(AlayaDbTest, PartialPrefixReuse) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  auto tokens = fx.TokenRange(100, 200);
  ASSERT_TRUE(db.Import(tokens, fx.MakeKv(200, 2)).ok());

  // Prompt shares only the first 120 tokens (e.g., same book, new question).
  auto prompt = fx.TokenRange(100, 120);
  prompt.push_back(-7);
  auto created = db.CreateSession(prompt);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, 120u);
  EXPECT_EQ(created.value().truncated_prompt.size(), 1u);
  EXPECT_TRUE(created.value().session->partial_reuse());
}

TEST(AlayaDbTest, NoMatchCreatesFreshSession) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  auto created = db.CreateSession(fx.TokenRange(5000, 10));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, 0u);
  EXPECT_EQ(created.value().truncated_prompt.size(), 10u);
  EXPECT_EQ(created.value().context_id, 0u);
}

TEST(AlayaDbTest, ImportValidatesInputs) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  EXPECT_FALSE(db.Import({1, 2, 3}, nullptr).ok());
  // Token/KV length mismatch.
  EXPECT_FALSE(db.Import({1, 2, 3}, fx.MakeKv(5, 3)).ok());
}

TEST(AlayaDbTest, ImportAccountsHostMemory) {
  DbFixture fx;
  fx.options.build_fine_indices = false;  // Isolate the KV accounting.
  AlayaDB db(fx.options, &fx.env);
  const uint64_t before = fx.env.host_memory().current();
  ASSERT_TRUE(db.Import(fx.TokenRange(0, 50), fx.MakeKv(50, 4)).ok());
  EXPECT_EQ(fx.env.host_memory().current() - before,
            50u * fx.model.KvBytesPerToken());
}

TEST(AlayaDbTest, StoreMaterializesSession) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  ASSERT_TRUE(db.Import(fx.TokenRange(0, 100), fx.MakeKv(100, 5)).ok());

  auto created = db.CreateSession(fx.TokenRange(0, 100));
  ASSERT_TRUE(created.ok());
  Session* session = created.value().session.get();

  // Decode 5 new tokens into the session.
  Rng rng(6);
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), k(stride), v(stride);
  std::vector<int32_t> new_tokens;
  for (int t = 0; t < 5; ++t) {
    for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
      rng.FillGaussian(q.data(), qstride);
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      ASSERT_TRUE(session->Update(layer, q.data(), k.data(), v.data()).ok());
    }
    new_tokens.push_back(1000 + t);
  }

  auto stored = db.Store(session, new_tokens);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();
  EXPECT_EQ(db.contexts().size(), 2u);
  const Context* ctx = db.contexts().FindUnsafeForTest(stored.value());
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->length(), 105u);
  EXPECT_EQ(ctx->kv().NumTokens(), 105u);
  EXPECT_TRUE(ctx->HasFineIndices());
  EXPECT_EQ(ctx->tokens()[100], 1000);

  // A future session now fully reuses the extended context.
  auto again = db.CreateSession(ctx->tokens());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, 105u);
  EXPECT_TRUE(again.value().truncated_prompt.empty());
}

TEST(AlayaDbTest, StoreValidatesTokenCount) {
  DbFixture fx;
  AlayaDB db(fx.options, &fx.env);
  auto created = db.CreateSession(fx.TokenRange(0, 5));
  ASSERT_TRUE(created.ok());
  std::vector<int32_t> wrong = {1, 2, 3};
  EXPECT_FALSE(db.Store(created.value().session.get(), wrong).ok());
  EXPECT_FALSE(db.Store(nullptr, {}).ok());
}

TEST(AlayaDbTest, HostMemorySymmetricAcrossStoreRemoveCycles) {
  DbFixture fx;
  fx.options.build_fine_indices = false;  // Isolate the KV accounting.
  AlayaDB db(fx.options, &fx.env);
  const uint64_t baseline = fx.env.host_memory().current();

  // Import/remove cycles must return the tracker to baseline every time —
  // the accounting used to grow monotonically (Allocate without Free).
  for (int cycle = 0; cycle < 3; ++cycle) {
    auto id = db.Import(fx.TokenRange(cycle * 1000, 50), fx.MakeKv(50, 20 + cycle));
    ASSERT_TRUE(id.ok());
    EXPECT_EQ(fx.env.host_memory().current() - baseline,
              50u * fx.model.KvBytesPerToken());
    ASSERT_TRUE(db.contexts().Remove(id.value()));
    EXPECT_EQ(fx.env.host_memory().current(), baseline) << "cycle " << cycle;
  }
}

TEST(AlayaDbTest, HostMemoryFreedOnlyWhenLastPinDrops) {
  DbFixture fx;
  fx.options.build_fine_indices = false;
  AlayaDB db(fx.options, &fx.env);
  const uint64_t baseline = fx.env.host_memory().current();
  auto id = db.Import(fx.TokenRange(0, 40), fx.MakeKv(40, 30));
  ASSERT_TRUE(id.ok());

  // A running session pins the context: Remove unregisters it but its host
  // bytes stay accounted until the pin drops (the storage is still alive).
  auto created = db.CreateSession(fx.TokenRange(0, 40));
  ASSERT_TRUE(created.ok());
  ASSERT_NE(created.value().context_ref, nullptr);
  ASSERT_TRUE(db.contexts().Remove(id.value()));
  EXPECT_GT(fx.env.host_memory().current(), baseline);

  created.value().session.reset();
  created.value().context_ref.reset();
  EXPECT_EQ(fx.env.host_memory().current(), baseline);
}

TEST(AlayaDbTest, CoarseIndicesBuiltWhenRequested) {
  DbFixture fx;
  fx.options.build_coarse_indices = true;
  fx.options.coarse.block_size = 16;
  AlayaDB db(fx.options, &fx.env);
  auto id = db.Import(fx.TokenRange(0, 64), fx.MakeKv(64, 7));
  ASSERT_TRUE(id.ok());
  const Context* ctx = db.contexts().FindUnsafeForTest(id.value());
  EXPECT_TRUE(ctx->HasCoarseIndices());
  EXPECT_GT(fx.env.gpu_memory().current(), 0u);  // Coarse blocks are GPU-resident.
}

}  // namespace
}  // namespace alaya
