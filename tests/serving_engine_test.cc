#include "src/server/serving_engine.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"

namespace alaya {
namespace {

// Shared geometry: small enough that the DIPRS sparse path engages (context
// longer than the short-context threshold) while builds stay fast.
struct ServingFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  uint64_t context_id = 0;
  /// Explicit multi-thread pool: the global pool may have one worker on small
  /// CI machines, which would silently serialize the "concurrent" runs.
  ThreadPool pool{4};

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  ServingFixture() {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    db = std::make_unique<AlayaDB>(options, &env);
    auto imported = db->Import(ContextTokens(), MakeKv(context_tokens, /*seed=*/1));
    EXPECT_TRUE(imported.ok()) << imported.status().ToString();
    context_id = imported.ValueOr(0);
  }

  std::vector<int32_t> ContextTokens() const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) t[i] = 100 + static_cast<int32_t>(i);
    return t;
  }

  std::unique_ptr<KvCache> MakeKv(size_t tokens, uint64_t seed) const {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  /// A request whose step inputs depend only on (seed, step, layer) — the
  /// determinism contract the engine's concurrent-vs-sequential guarantee
  /// rests on.
  ServingRequest MakeRequest(uint64_t seed, size_t steps) const {
    ServingRequest r;
    r.prompt = ContextTokens();
    r.max_new_tokens = steps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    r.token_at = [seed](size_t step) {
      return static_cast<int32_t>(10000 + seed * 100 + step);
    };
    return r;
  }
};

TEST(ServingEngineTest, ConcurrentMatchesSequential) {
  constexpr int kRequests = 3;
  constexpr size_t kSteps = 4;

  // Concurrent run: all sessions admitted and stepped together.
  ServingFixture concurrent_fx;
  ServingEngine concurrent(concurrent_fx.db.get(),
                           concurrent_fx.EngineOptions(kRequests));
  std::vector<uint64_t> cids;
  for (int i = 0; i < kRequests; ++i) {
    auto id = concurrent.Submit(concurrent_fx.MakeRequest(11 + i, kSteps));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    cids.push_back(id.value().id());
  }
  ASSERT_TRUE(concurrent.RunToCompletion().ok());
  EXPECT_EQ(concurrent.snapshot().peak_concurrent_sessions,
            static_cast<size_t>(kRequests));

  // Sequential run: identical DB state, one session at a time.
  ServingFixture sequential_fx;
  ServingEngine sequential(sequential_fx.db.get(),
                           sequential_fx.EngineOptions(1));
  std::vector<uint64_t> sids;
  for (int i = 0; i < kRequests; ++i) {
    auto id = sequential.Submit(sequential_fx.MakeRequest(11 + i, kSteps));
    ASSERT_TRUE(id.ok());
    sids.push_back(id.value().id());
  }
  ASSERT_TRUE(sequential.RunToCompletion().ok());
  EXPECT_EQ(sequential.snapshot().peak_concurrent_sessions, 1u);

  for (int i = 0; i < kRequests; ++i) {
    const RequestResult* c = concurrent.result(cids[i]);
    const RequestResult* s = sequential.result(sids[i]);
    ASSERT_NE(c, nullptr);
    ASSERT_NE(s, nullptr);
    ASSERT_TRUE(c->status.ok()) << c->status.ToString();
    ASSERT_TRUE(s->status.ok()) << s->status.ToString();
    EXPECT_EQ(c->steps_completed, kSteps);
    ASSERT_EQ(c->outputs.size(), s->outputs.size());
    // Bit-identical: concurrency changes scheduling, never math.
    EXPECT_EQ(c->outputs, s->outputs) << "request " << i;
  }
}

TEST(ServingEngineTest, MemoryBudgetSerializesAdmission) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(4);
  ServingEngine sized(fx.db.get(), opts);
  const AdmissionEstimate one =
      sized.scheduler().Estimate(fx.MakeRequest(1, 3));
  ASSERT_GT(one.gpu_bytes, 0u);
  ASSERT_GT(one.step_gpu_seconds, 0.0);

  // Budget fits exactly one projected session: the others queue behind it.
  opts.scheduler.gpu_budget_bytes = one.gpu_bytes;
  ServingEngine engine(fx.db.get(), opts);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = engine.Submit(fx.MakeRequest(21 + i, 3));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ids.push_back(id.value().id());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.completed, 3u);
  EXPECT_EQ(snap.peak_concurrent_sessions, 1u);
  for (uint64_t id : ids) {
    ASSERT_NE(engine.result(id), nullptr);
    EXPECT_TRUE(engine.result(id)->status.ok());
  }
}

TEST(ServingEngineTest, OversizedRequestRejected) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(1);
  ServingEngine sized(fx.db.get(), opts);
  const AdmissionEstimate one = sized.scheduler().Estimate(fx.MakeRequest(1, 3));

  opts.scheduler.gpu_budget_bytes = one.gpu_bytes - 1;  // Can never fit.
  ServingEngine engine(fx.db.get(), opts);
  auto id = engine.Submit(fx.MakeRequest(31, 3));
  ASSERT_FALSE(id.ok());
  // Typed as permanent: retrying can never succeed (vs kBacklogFull).
  EXPECT_EQ(id.status().code(), StatusCode::kNeverFits);
  EXPECT_EQ(engine.snapshot().rejected, 1u);
  ASSERT_TRUE(engine.RunToCompletion().ok());  // Nothing queued; no-op.
  EXPECT_EQ(engine.snapshot().completed, 0u);
}

TEST(ServingEngineTest, QueueDepthLimitRejects) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(1);
  opts.scheduler.max_queue_depth = 1;
  ServingEngine engine(fx.db.get(), opts);
  ASSERT_TRUE(engine.Submit(fx.MakeRequest(41, 2)).ok());
  auto second = engine.Submit(fx.MakeRequest(42, 2));
  ASSERT_FALSE(second.ok());
  // Typed as retryable backpressure: the queue drains as sessions finish.
  EXPECT_EQ(second.status().code(), StatusCode::kBacklogFull);
  ASSERT_TRUE(engine.RunToCompletion().ok());
  EXPECT_EQ(engine.snapshot().completed, 1u);
}

TEST(ServingEngineTest, ConcurrentSessionsShareReusedPrefix) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(3);
  ServingEngine engine(fx.db.get(), opts);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto id = engine.Submit(fx.MakeRequest(51 + i, 2));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value().id());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  for (uint64_t id : ids) {
    const RequestResult* r = engine.result(id);
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    // Every concurrent session reuses the same stored context, fully.
    EXPECT_EQ(r->reused_prefix, fx.context_tokens);
    EXPECT_EQ(r->reused_context_id, fx.context_id);
  }
}

TEST(ServingEngineTest, StoreOnFinishMaterializesContext) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(1);
  ServingEngine engine(fx.db.get(), opts);
  ServingRequest req = fx.MakeRequest(61, 3);
  req.store_on_finish = true;
  auto id = engine.Submit(std::move(req));
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* r = engine.result(id.value().id());
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_NE(r->stored_context_id, 0u);
  EXPECT_EQ(fx.db->contexts().size(), 2u);
  const Context* stored = fx.db->contexts().FindUnsafeForTest(r->stored_context_id);
  ASSERT_NE(stored, nullptr);
  // Reused prefix + 3 decoded tokens, with the request's token ids appended.
  EXPECT_EQ(stored->length(), fx.context_tokens + 3);
  EXPECT_EQ(stored->tokens().back(), 10000 + 61 * 100 + 2);

  // A follow-up prompt over the materialized context reuses it fully.
  auto again = fx.db->CreateSession(stored->tokens());
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, fx.context_tokens + 3);
}

TEST(ServingEngineTest, UnprefillablePromptFailsThatRequestOnly) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(2);
  ServingEngine engine(fx.db.get(), opts);

  // One healthy request, one whose prompt extends past every stored context
  // but carries no fill_prompt callback — the engine cannot prefill the
  // suffix, so it must fail honestly, not serve garbage. (With fill_prompt
  // set, the same prompt serves through the prefill phase; see
  // serving_prefill_test.cc.)
  auto good = engine.Submit(fx.MakeRequest(81, 2));
  ASSERT_TRUE(good.ok());
  ServingRequest bad_req = fx.MakeRequest(82, 2);
  bad_req.prompt.push_back(-42);  // Unmatched suffix -> needs prefill.
  ASSERT_EQ(bad_req.fill_prompt, nullptr);
  auto bad = engine.Submit(std::move(bad_req));
  ASSERT_TRUE(bad.ok());

  ASSERT_TRUE(engine.RunToCompletion().ok());
  const RequestResult* g = engine.result(good.value().id());
  const RequestResult* b = engine.result(bad.value().id());
  ASSERT_NE(g, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_TRUE(g->status.ok()) << g->status.ToString();
  EXPECT_EQ(g->steps_completed, 2u);
  EXPECT_EQ(b->status.code(), StatusCode::kNotSupported);
  EXPECT_EQ(b->steps_completed, 0u);
  // The failed request released its reservation; nothing leaks.
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.snapshot().completed, 2u);
}

TEST(ServingEngineTest, ThroughputSnapshotReported) {
  ServingFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(2);
  ServingEngine engine(fx.db.get(), opts);
  ASSERT_TRUE(engine.Submit(fx.MakeRequest(71, 2)).ok());
  ASSERT_TRUE(engine.Submit(fx.MakeRequest(72, 3)).ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.tokens_decoded, 5u);
  EXPECT_GT(snap.tokens_per_second, 0.0);
  EXPECT_GT(snap.serve_wall_seconds, 0.0);
  EXPECT_EQ(snap.peak_concurrent_sessions, 2u);
  EXPECT_GT(snap.peak_gpu_bytes, 0u);
}

}  // namespace
}  // namespace alaya
