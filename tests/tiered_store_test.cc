// Tiered context store: host-budget eviction, durable spill/restore, and
// restart semantics. The load-bearing assertions are bit-identical decode —
// a context that was spilled to disk and paged back must attend exactly like
// one that never left host memory — and tracker-verified peak residency.
#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/core/alaya_db.h"

namespace alaya {
namespace {

struct TierFixture {
  ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  DbOptions options;

  TierFixture() {
    options.model = model;
    options.build_fine_indices = true;
    // Force the sparse path: 200-token contexts decode through their fine
    // indices, so a restored index participates in every output we compare.
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{16, 64};
    options.session.gpu_budget_bytes = 0;
  }

  std::unique_ptr<KvCache> MakeKv(size_t tokens, uint64_t seed) {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  std::vector<int32_t> TokenRange(int32_t start, size_t count) {
    std::vector<int32_t> t(count);
    for (size_t i = 0; i < count; ++i) t[i] = start + static_cast<int32_t>(i);
    return t;
  }

  /// Decodes `steps` tokens with queries that depend only on (step, layer) and
  /// returns every attention output, so two runs are comparable bit-for-bit.
  std::vector<float> Decode(Session* session, size_t steps) {
    const size_t qstride = static_cast<size_t>(model.num_q_heads) * model.head_dim;
    std::vector<float> q(qstride), out(qstride), all;
    for (size_t step = 0; step < steps; ++step) {
      for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
        Rng rng(0xDEC0DE ^ (step * 2654435761ull + layer));
        rng.FillGaussian(q.data(), qstride);
        EXPECT_TRUE(session->Attention(layer, q.data(), out.data()).ok());
        all.insert(all.end(), out.begin(), out.end());
      }
    }
    return all;
  }
};

void ExpectBitIdentical(const std::vector<float>& got, const std::vector<float>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    ASSERT_EQ(got[i], want[i]) << "output diverged at float " << i;
  }
}

/// mkdtemp-backed spill directory, recursively removed on scope exit.
struct TempSpillDir {
  std::string path;
  TempSpillDir() {
    char buf[] = "/tmp/alaya_tier_XXXXXX";
    char* got = mkdtemp(buf);
    EXPECT_NE(got, nullptr);
    if (got != nullptr) path = got;
  }
  ~TempSpillDir() {
    if (path.empty()) return;
    if (DIR* d = opendir(path.c_str())) {
      while (dirent* e = readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((path + "/" + name).c_str());
      }
      closedir(d);
    }
    ::rmdir(path.c_str());
  }
};

// --- Acceptance: with a host budget forcing eviction, re-hitting spilled
// --- prefixes produces bit-identical outputs to the unbounded golden, and
// --- peak host bytes stay under budget (tracker-verified).

TEST(TieredStoreTest, BudgetEvictionThenPageInIsBitIdentical) {
  constexpr size_t kTokens = 200;
  constexpr size_t kSteps = 3;

  // Golden: unbounded store, nothing ever evicted.
  TierFixture golden_fx;
  std::vector<float> golden;
  {
    AlayaDB db(golden_fx.options, &golden_fx.env);
    for (int i = 0; i < 3; ++i) {
      ASSERT_TRUE(
          db.Import(golden_fx.TokenRange(i * 1000, kTokens), golden_fx.MakeKv(kTokens, 50 + i))
              .ok());
    }
    auto created = db.CreateSession(golden_fx.TokenRange(0, kTokens));
    ASSERT_TRUE(created.ok());
    ASSERT_EQ(created.value().reused_prefix, kTokens);
    golden = golden_fx.Decode(created.value().session.get(), kSteps);
  }

  // Tiered: budget fits ~1.5 contexts, so the third import forces the first
  // two out; re-hitting context 0's prefix demand-pages it back from the
  // (in-memory) spill tier.
  TierFixture fx;
  const uint64_t ctx_bytes = kTokens * fx.model.KvBytesPerToken();
  fx.options.tier.host_budget_bytes = ctx_bytes + ctx_bytes / 2;
  AlayaDB db(fx.options, &fx.env);
  std::vector<uint64_t> ids;
  for (int i = 0; i < 3; ++i) {
    auto imported =
        db.Import(fx.TokenRange(i * 1000, kTokens), fx.MakeKv(kTokens, 50 + i));
    ASSERT_TRUE(imported.ok());
    ids.push_back(imported.value());
  }
  ASSERT_NE(db.tiers(), nullptr);
  TieredContextStore::Stats stats = db.tiers()->stats();
  EXPECT_GE(stats.spills, 2u);
  EXPECT_EQ(db.contexts().size(), 3u);       // Spilled ids stay live...
  EXPECT_GE(db.contexts().spilled(), 2u);    // ...but cold.
  EXPECT_LE(db.contexts().TotalKvBytes(), fx.options.tier.host_budget_bytes);

  // Context 0 was evicted; a session over its tokens pages it back in and
  // decodes exactly like the never-evicted golden.
  ASSERT_TRUE(db.contexts().IsSpilled(ids[0]));
  auto created = db.CreateSession(fx.TokenRange(0, kTokens));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, kTokens);
  EXPECT_EQ(created.value().context_id, ids[0]);
  ASSERT_NE(created.value().context_ref, nullptr);
  EXPECT_TRUE(created.value().context_ref->fine_indices_restored());
  ExpectBitIdentical(fx.Decode(created.value().session.get(), kSteps), golden);

  stats = db.tiers()->stats();
  EXPECT_GE(stats.page_ins, 1u);
  EXPECT_GE(stats.persisted, 2u);
  // The whole run — imports, evictions, page-in — never overshot the budget:
  // headroom is made before bytes attach, so even the PEAK stays under.
  EXPECT_LE(fx.env.host_memory().peak(), fx.options.tier.host_budget_bytes);
}

// --- Acceptance: a session pinning a context survives its eviction (the pin
// --- keeps the payload alive; the store only drops its own reference), and
// --- the later page-in decodes bit-identically.

TEST(TieredStoreTest, PinnedSessionSurvivesEviction) {
  constexpr size_t kTokens = 200;
  constexpr size_t kSteps = 3;
  TierFixture fx;
  fx.options.tier.host_budget_bytes = 64ull << 20;  // Roomy: no forced eviction.
  AlayaDB db(fx.options, &fx.env);
  auto imported = db.Import(fx.TokenRange(0, kTokens), fx.MakeKv(kTokens, 60));
  ASSERT_TRUE(imported.ok());
  const uint64_t id = imported.value();

  // Golden decode from a throwaway session while the context is resident.
  std::vector<float> golden;
  {
    auto s = db.CreateSession(fx.TokenRange(0, kTokens));
    ASSERT_TRUE(s.ok());
    golden = fx.Decode(s.value().session.get(), kSteps);
  }

  // A live session pins the context, then the tier evicts it out from under
  // the session (cost-aware eviction never picks pinned victims, but direct
  // SpillContext is the adversarial case the pin must survive).
  auto pinned = db.CreateSession(fx.TokenRange(0, kTokens));
  ASSERT_TRUE(pinned.ok());
  ASSERT_NE(pinned.value().context_ref, nullptr);
  ASSERT_TRUE(db.tiers()->SpillContext(id).ok());
  EXPECT_TRUE(db.contexts().IsSpilled(id));
  EXPECT_EQ(db.contexts().FindShared(id), nullptr);

  // The pinned session still decodes over the detached payload, unperturbed.
  ExpectBitIdentical(fx.Decode(pinned.value().session.get(), kSteps), golden);

  // And a fresh session pages the spilled copy back in, also bit-identical.
  auto again = db.CreateSession(fx.TokenRange(0, kTokens));
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, kTokens);
  ExpectBitIdentical(fx.Decode(again.value().session.get(), kSteps), golden);

  const TieredContextStore::Stats stats = db.tiers()->stats();
  EXPECT_EQ(stats.spills, 1u);
  EXPECT_EQ(stats.page_ins, 1u);
}

// --- Acceptance: an engine restart (new AlayaDB over the same spill dir)
// --- serves a stored prefix from disk without rebuilding its indices.

TEST(TieredStoreTest, KillRestartWarmStartServesFromDisk) {
  constexpr size_t kTokens = 200;
  constexpr size_t kSteps = 3;
  TempSpillDir dir;
  ASSERT_FALSE(dir.path.empty());

  TierFixture fx;
  fx.options.tier.spill_dir = dir.path;
  fx.options.tier.durable = true;  // Persist every published context.

  uint64_t id = 0;
  std::vector<float> golden;
  IndexBuildStats built_stats;
  {
    AlayaDB db(fx.options, &fx.env);
    auto imported = db.Import(fx.TokenRange(0, kTokens), fx.MakeKv(kTokens, 70));
    ASSERT_TRUE(imported.ok());
    id = imported.value();
    EXPECT_GE(db.tiers()->stats().persisted, 1u);
    built_stats = db.contexts().FindShared(id)->build_stats();
    EXPECT_GT(built_stats.num_indices, 0u);
    auto s = db.CreateSession(fx.TokenRange(0, kTokens));
    ASSERT_TRUE(s.ok());
    golden = fx.Decode(s.value().session.get(), kSteps);
  }  // "Kill": the first engine is gone; only the spill dir survives.

  TierFixture restarted;
  restarted.options.tier.spill_dir = dir.path;
  restarted.options.tier.durable = true;
  restarted.options.tier.warm_start = true;
  AlayaDB db(restarted.options, &restarted.env);
  ASSERT_TRUE(db.tiers()->warm_start_status().ok())
      << db.tiers()->warm_start_status().ToString();
  EXPECT_EQ(db.tiers()->stats().warm_started, 1u);
  ASSERT_EQ(db.contexts().size(), 1u);
  EXPECT_TRUE(db.contexts().IsSpilled(id));  // Id preserved across restart.
  EXPECT_EQ(restarted.env.host_memory().current(), 0u);  // Nothing resident yet.

  // First hit demand-pages the manifest's payload; the context arrives with
  // its indices RESTORED from the persisted adjacency, not rebuilt — and with
  // the build provenance it paid for at first construction.
  auto created = db.CreateSession(restarted.TokenRange(0, kTokens));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, kTokens);
  EXPECT_EQ(created.value().context_id, id);
  ASSERT_NE(created.value().context_ref, nullptr);
  EXPECT_TRUE(created.value().context_ref->HasFineIndices());
  EXPECT_TRUE(created.value().context_ref->fine_indices_restored());
  const IndexBuildStats& restored = created.value().context_ref->build_stats();
  EXPECT_EQ(restored.num_indices, built_stats.num_indices);
  EXPECT_EQ(restored.index_bytes, built_stats.index_bytes);
  EXPECT_EQ(restored.reused_base_nodes, built_stats.reused_base_nodes);
  EXPECT_EQ(restored.reported_seconds, built_stats.reported_seconds);

  ExpectBitIdentical(restarted.Decode(created.value().session.get(), kSteps), golden);
  EXPECT_EQ(db.tiers()->stats().page_ins, 1u);
}

// --- Eviction policy details: pinned contexts are never picked, and when
// --- everything is pinned the tier stalls (counted) instead of thrashing.

TEST(TieredStoreTest, EvictionSkipsPinnedAndStallsWhenAllPinned) {
  constexpr size_t kTokens = 200;
  TierFixture fx;
  const uint64_t ctx_bytes = kTokens * fx.model.KvBytesPerToken();
  fx.options.tier.host_budget_bytes = ctx_bytes + ctx_bytes / 2;
  AlayaDB db(fx.options, &fx.env);
  ASSERT_TRUE(db.Import(fx.TokenRange(0, kTokens), fx.MakeKv(kTokens, 80)).ok());

  // Pin the only resident context, then import another one: the budget wants
  // a victim but the pin disqualifies it, so the tier records a stall rather
  // than evicting storage a live session depends on.
  auto pinned = db.CreateSession(fx.TokenRange(0, kTokens));
  ASSERT_TRUE(pinned.ok());
  ASSERT_NE(pinned.value().context_ref, nullptr);
  auto second = db.Import(fx.TokenRange(5000, kTokens), fx.MakeKv(kTokens, 81));
  ASSERT_TRUE(second.ok());
  const TieredContextStore::Stats stats = db.tiers()->stats();
  EXPECT_GE(stats.eviction_stalls, 1u);
  EXPECT_FALSE(db.contexts().IsSpilled(pinned.value().context_id));
  // The unpinned newcomer is the next legal victim once publish re-checks the
  // budget, so the store converges back under it.
  EXPECT_LE(db.contexts().TotalKvBytes(), fx.options.tier.host_budget_bytes);
}

// --- Torn-write safety end to end: a manifest truncated by a crash
// --- mid-persist is detected (trailer/checksum) and SKIPPED on warm start —
// --- no crash, no half-restored context — while intact neighbors still load
// --- and decode bit-identically. Re-persists after restart stamp generations
// --- past everything that survived on disk.

TEST(TieredStoreTest, TruncatedManifestSkippedOnWarmStart) {
  constexpr size_t kTokens = 200;
  constexpr size_t kSteps = 3;
  TempSpillDir dir;
  ASSERT_FALSE(dir.path.empty());

  TierFixture fx;
  fx.options.tier.spill_dir = dir.path;
  fx.options.tier.durable = true;

  uint64_t torn_id = 0, intact_id = 0;
  std::vector<float> golden;
  {
    AlayaDB db(fx.options, &fx.env);
    auto first = db.Import(fx.TokenRange(0, kTokens), fx.MakeKv(kTokens, 90));
    auto second = db.Import(fx.TokenRange(5000, kTokens), fx.MakeKv(kTokens, 91));
    ASSERT_TRUE(first.ok());
    ASSERT_TRUE(second.ok());
    torn_id = first.value();
    intact_id = second.value();
    EXPECT_GE(db.tiers()->stats().persisted, 2u);
    auto s = db.CreateSession(fx.TokenRange(5000, kTokens));
    ASSERT_TRUE(s.ok());
    golden = fx.Decode(s.value().session.get(), kSteps);
  }  // "Kill" the engine...

  // ...mid-persist: cut torn_id's manifest in half, the residue of a crash
  // between the payload writes and the manifest commit completing.
  const std::string torn_path = dir.path + "/" +
                                ContextSerializer::ManifestName(
                                    TieredContextStore::SpillName(torn_id)) +
                                ".vf";
  struct stat st {};
  ASSERT_EQ(::stat(torn_path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(torn_path.c_str(), st.st_size / 2), 0);

  TierFixture restarted;
  restarted.options.tier.spill_dir = dir.path;
  restarted.options.tier.durable = true;
  restarted.options.tier.warm_start = true;
  AlayaDB db(restarted.options, &restarted.env);
  // The torn manifest is an expected crash residue, not an error: status
  // stays clean, the context is skipped and counted, intact neighbors load.
  EXPECT_TRUE(db.tiers()->warm_start_status().ok())
      << db.tiers()->warm_start_status().ToString();
  const TieredContextStore::Stats stats = db.tiers()->stats();
  EXPECT_EQ(stats.warm_started, 1u);
  EXPECT_EQ(stats.warm_start_skipped, 1u);
  EXPECT_EQ(db.contexts().size(), 1u);
  EXPECT_FALSE(db.contexts().IsSpilled(torn_id));   // Never resurrected...
  EXPECT_EQ(db.contexts().FindShared(torn_id), nullptr);
  EXPECT_TRUE(db.contexts().IsSpilled(intact_id));  // ...neighbor intact.

  auto created = db.CreateSession(restarted.TokenRange(5000, kTokens));
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, kTokens);
  EXPECT_EQ(created.value().context_id, intact_id);
  ExpectBitIdentical(restarted.Decode(created.value().session.get(), kSteps), golden);

  // A fresh durable import must stamp a generation past the survivor's — the
  // warm start re-seeded the counter from the manifests it scanned.
  ContextSerializer ser(&db.tiers()->vfs());
  auto intact_man = ser.LoadManifest(TieredContextStore::SpillName(intact_id),
                                     restarted.model);
  ASSERT_TRUE(intact_man.ok()) << intact_man.status().ToString();
  auto fresh = db.Import(restarted.TokenRange(9000, kTokens),
                         restarted.MakeKv(kTokens, 92));
  ASSERT_TRUE(fresh.ok());
  auto fresh_man = ser.LoadManifest(TieredContextStore::SpillName(fresh.value()),
                                    restarted.model);
  ASSERT_TRUE(fresh_man.ok()) << fresh_man.status().ToString();
  EXPECT_GT(fresh_man.value().generation, intact_man.value().generation);
}

// --- Eviction policy: prefix popularity DECAYS (half-life in virtual time).
// --- A context hammered long ago must lose to one hit recently — with
// --- count-forever hits the old favorite is immortal and the store evicts
// --- the currently-hot (or brand-new) context instead.

TEST(TieredStoreTest, DecayedPopularityEvictsFormerlyHot) {
  constexpr size_t kTokens = 200;
  TierFixture fx;
  const uint64_t ctx_bytes = kTokens * fx.model.KvBytesPerToken();
  fx.options.tier.host_budget_bytes = 2 * ctx_bytes + ctx_bytes / 2;
  fx.options.tier.popularity_half_life = 2;  // Aggressive: a test-scale fade.
  AlayaDB db(fx.options, &fx.env);

  auto a = db.Import(fx.TokenRange(0, kTokens), fx.MakeKv(kTokens, 100));
  auto b = db.Import(fx.TokenRange(5000, kTokens), fx.MakeKv(kTokens, 101));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());

  // A was the early favorite (12 hits)... then the workload moved to B.
  for (int i = 0; i < 12; ++i) db.tiers()->OnPrefixHit(a.value());
  for (int i = 0; i < 3; ++i) db.tiers()->OnPrefixHit(b.value());

  // The third import needs a victim. Raw counts say A (12 hits) outranks both
  // B (3) and the newcomer; decayed counts say A's glory has faded.
  auto c = db.Import(fx.TokenRange(9000, kTokens), fx.MakeKv(kTokens, 102));
  ASSERT_TRUE(c.ok());
  EXPECT_TRUE(db.contexts().IsSpilled(a.value()));
  EXPECT_FALSE(db.contexts().IsSpilled(b.value()));
  EXPECT_FALSE(db.contexts().IsSpilled(c.value()));
  EXPECT_LE(db.contexts().TotalKvBytes(), fx.options.tier.host_budget_bytes);
}

// --- Concurrency: page-ins of DISTINCT contexts overlap (the io mutex is
// --- sharded per-id, not global); every load lands intact and decodes
// --- bit-identically. Run under TSan in CI.

TEST(TieredStoreTest, ConcurrentDistinctPageInsAreSafe) {
  constexpr size_t kTokens = 200;
  constexpr size_t kSteps = 2;
  constexpr int kContexts = 4;
  TierFixture fx;
  fx.options.tier.host_budget_bytes = 64ull << 20;  // Roomy: no forced eviction.
  AlayaDB db(fx.options, &fx.env);
  ASSERT_NE(db.tiers(), nullptr);

  std::vector<uint64_t> ids;
  std::vector<std::vector<float>> goldens;
  for (int i = 0; i < kContexts; ++i) {
    auto imported =
        db.Import(fx.TokenRange(i * 1000, kTokens), fx.MakeKv(kTokens, 110 + i));
    ASSERT_TRUE(imported.ok());
    ids.push_back(imported.value());
    auto s = db.CreateSession(fx.TokenRange(i * 1000, kTokens));
    ASSERT_TRUE(s.ok());
    goldens.push_back(fx.Decode(s.value().session.get(), kSteps));
  }
  for (uint64_t id : ids) {
    ASSERT_TRUE(db.tiers()->SpillContext(id).ok());
    ASSERT_TRUE(db.contexts().IsSpilled(id));
  }

  std::vector<Status> results(kContexts, Status::Internal("not run"));
  {
    std::vector<std::thread> threads;
    for (int i = 0; i < kContexts; ++i) {
      threads.emplace_back([&, i] {
        auto paged = db.tiers()->PageIn(ids[i]);
        results[i] = paged.status();
      });
    }
    for (auto& t : threads) t.join();
  }
  for (int i = 0; i < kContexts; ++i) {
    EXPECT_TRUE(results[i].ok()) << results[i].ToString();
  }
  EXPECT_EQ(db.tiers()->stats().page_ins, static_cast<uint64_t>(kContexts));

  for (int i = 0; i < kContexts; ++i) {
    auto s = db.CreateSession(fx.TokenRange(i * 1000, kTokens));
    ASSERT_TRUE(s.ok());
    EXPECT_EQ(s.value().reused_prefix, kTokens);
    ExpectBitIdentical(fx.Decode(s.value().session.get(), kSteps), goldens[i]);
  }
}

}  // namespace
}  // namespace alaya
