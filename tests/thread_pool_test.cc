#include "src/common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace alaya {
namespace {

TEST(ThreadPoolTest, SubmitAndWait) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  ThreadPool pool(8);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  pool.ParallelFor(5, 5, [&](size_t) { count.fetch_add(1); });
  pool.ParallelFor(7, 3, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
}

TEST(ThreadPoolTest, ParallelForSingleElement) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(3, 4, [&](size_t i) {
    EXPECT_EQ(i, 3u);
    count.fetch_add(1);
  });
  EXPECT_EQ(count.load(), 1);
}

TEST(ThreadPoolTest, ParallelForComputesCorrectSum) {
  ThreadPool pool(8);
  const size_t n = 100000;
  std::vector<uint64_t> out(n);
  pool.ParallelFor(0, n, [&](size_t i) { out[i] = i * 2; });
  uint64_t sum = std::accumulate(out.begin(), out.end(), uint64_t{0});
  EXPECT_EQ(sum, uint64_t(n) * (n - 1));
}

TEST(ThreadPoolTest, ParallelForChunkedCoversRange) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(777);
  pool.ParallelForChunked(0, 777, 10, [&](size_t lo, size_t hi) {
    for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
  });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, NestedSubmitFromTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.Submit([&] {
    for (int i = 0; i < 10; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
  });
  pool.Wait();
  EXPECT_EQ(count.load(), 10);
}

TEST(ThreadPoolTest, NestedParallelForFromTasks) {
  // Every worker issues its own ParallelFor: the caller-participates scheme
  // must make progress even when all workers are simultaneously inside one
  // (the serving engine nests index builds inside pool tasks).
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] {
      pool.ParallelFor(0, 100, [&](size_t) { total.fetch_add(1); });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, NestedParallelForChunkedFromTasks) {
  ThreadPool pool(4);
  std::atomic<int> total{0};
  for (int t = 0; t < 8; ++t) {
    pool.Submit([&] {
      pool.ParallelForChunked(0, 90, 6, [&](size_t lo, size_t hi) {
        total.fetch_add(static_cast<int>(hi - lo));
      });
    });
  }
  pool.Wait();
  EXPECT_EQ(total.load(), 720);
}

TEST(ThreadPoolTest, GlobalPoolIsUsable) {
  std::atomic<int> count{0};
  ThreadPool::Global().ParallelFor(0, 50, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 50);
  EXPECT_GE(ThreadPool::Global().num_threads(), 1u);
}

TEST(ThreadPoolTest, DestructorDrainsTasks) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 20; ++i) {
      pool.Submit([&] { count.fetch_add(1); });
    }
    pool.Wait();
  }
  EXPECT_EQ(count.load(), 20);
}

}  // namespace
}  // namespace alaya
