#include "src/core/session.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/attention/attention_engine.h"
#include "src/common/rng.h"

namespace alaya {
namespace {

struct SessionFixture {
  ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  Rng rng{1234};

  std::unique_ptr<KvCache> MakeKv(size_t tokens, uint64_t seed) {
    auto kv = std::make_unique<KvCache>(model);
    Rng r(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        r.FillGaussian(k.data(), stride);
        r.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  /// Reference output: exact attention over context prefix + session local.
  void Reference(const Context* ctx, size_t prefix, const KvCache& local,
                 uint32_t layer, const float* q, float* out) {
    const size_t d = model.head_dim;
    const float scale = 1.0f / std::sqrt(static_cast<float>(d));
    for (uint32_t h = 0; h < model.num_q_heads; ++h) {
      const uint32_t kvh = model.KvHeadForQuery(h);
      PartialAttention state(d);
      if (ctx != nullptr && prefix > 0) {
        KvPartition part{ctx->kv().Keys(layer, kvh), ctx->kv().Values(layer, kvh),
                         {}, 0, static_cast<uint32_t>(prefix)};
        AccumulatePartition(q + h * d, part, scale, &state);
      }
      if (local.NumTokens(layer) > 0) {
        KvPartition part{local.Keys(layer, kvh), local.Values(layer, kvh),
                         {}, 0, static_cast<uint32_t>(local.NumTokens(layer))};
        AccumulatePartition(q + h * d, part, scale, &state);
      }
      state.Finalize(out + h * d);
    }
  }
};

TEST(SessionTest, UpdateGrowsLocalCache) {
  SessionFixture fx;
  Session session(fx.model, SessionOptions{}, nullptr, 0, &fx.env);
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), k(stride), v(stride);
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    fx.rng.FillGaussian(k.data(), stride);
    fx.rng.FillGaussian(v.data(), stride);
    fx.rng.FillGaussian(q.data(), qstride);
    ASSERT_TRUE(session.Update(layer, q.data(), k.data(), v.data()).ok());
  }
  EXPECT_EQ(session.LocalTokens(0), 1u);
  EXPECT_EQ(session.TotalTokens(0), 1u);
  EXPECT_NE(session.recorded_queries(), nullptr);
  EXPECT_EQ(session.recorded_queries()->NumSamples(0), 1u);
  EXPECT_GT(session.GpuResidentBytes(), 0u);
}

TEST(SessionTest, ShortContextAttentionMatchesReference) {
  // The optimizer picks full attention for short contexts; the session output
  // must equal exact attention over the whole sequence.
  SessionFixture fx;
  SessionOptions opts;
  Session session(fx.model, opts, nullptr, 0, &fx.env);
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), k(stride), v(stride);
  for (int t = 0; t < 30; ++t) {
    for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
      fx.rng.FillGaussian(k.data(), stride);
      fx.rng.FillGaussian(v.data(), stride);
      fx.rng.FillGaussian(q.data(), qstride);
      ASSERT_TRUE(session.Update(layer, q.data(), k.data(), v.data()).ok());
    }
  }
  std::vector<float> out(qstride), ref(qstride);
  fx.rng.FillGaussian(q.data(), qstride);
  AttentionCallStats stats;
  ASSERT_TRUE(session.Attention(1, q.data(), out.data(), &stats).ok());
  fx.Reference(nullptr, 0, session.local_kv(), 1, q.data(), ref.data());
  for (size_t i = 0; i < qstride; ++i) EXPECT_NEAR(out[i], ref[i], 1e-4);
  EXPECT_EQ(stats.plan_explain, "full_attention");
  EXPECT_EQ(stats.attended_tokens, 30u * fx.model.num_q_heads);
}

TEST(SessionTest, ReusedContextFullAttentionMatchesReference) {
  SessionFixture fx;
  Context ctx(1, std::vector<int32_t>(50, 3), fx.MakeKv(50, 77));
  SessionOptions opts;  // Short-context threshold keeps this on full attention.
  Session session(fx.model, opts, &ctx, 50, &fx.env);
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), out(qstride), ref(qstride);
  fx.rng.FillGaussian(q.data(), qstride);
  ASSERT_TRUE(session.Attention(0, q.data(), out.data()).ok());
  fx.Reference(&ctx, 50, session.local_kv(), 0, q.data(), ref.data());
  for (size_t i = 0; i < qstride; ++i) EXPECT_NEAR(out[i], ref[i], 1e-4);
}

TEST(SessionTest, SparsePathRunsWithFineIndices) {
  SessionFixture fx;
  const size_t n = 600;
  Context ctx(1, std::vector<int32_t>(n, 3), fx.MakeKv(n, 88));
  IndexBuildOptions build;
  ASSERT_TRUE(ctx.BuildFineIndices(build, nullptr, nullptr).ok());

  SessionOptions opts;
  opts.optimizer.short_context_threshold = 128;  // Force the sparse path.
  opts.window = WindowConfig{16, 32};
  Session session(fx.model, opts, &ctx, n, &fx.env);
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), out(qstride);
  fx.rng.FillGaussian(q.data(), qstride);
  AttentionCallStats stats;
  // Layer 0 -> flat DIPR; layer 1 -> fine DIPR.
  ASSERT_TRUE(session.Attention(0, q.data(), out.data(), &stats).ok());
  EXPECT_NE(stats.plan_explain.find("flat"), std::string::npos);
  EXPECT_GT(stats.retrieved_tokens, 0u);
  ASSERT_TRUE(session.Attention(1, q.data(), out.data(), &stats).ok());
  EXPECT_NE(stats.plan_explain.find("fine"), std::string::npos);
  EXPECT_GT(stats.attended_tokens, 0u);
  EXPECT_GT(stats.search_seconds + stats.attention_seconds, 0.0);
}

TEST(SessionTest, PartialReuseNeverAttendsBeyondPrefix) {
  // Poison the stored context beyond the prefix with huge value vectors; if
  // the session ever attends them the output explodes.
  SessionFixture fx;
  const size_t n = 500, prefix = 300;
  auto kv = fx.MakeKv(n, 99);
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      for (size_t t = prefix; t < n; ++t) {
        float* v = kv->Head(layer, h).values.MutableVec(static_cast<uint32_t>(t));
        for (uint32_t j = 0; j < fx.model.head_dim; ++j) v[j] = 1e6f;
        // Also make their keys attractive.
        float* key = kv->Head(layer, h).keys.MutableVec(static_cast<uint32_t>(t));
        for (uint32_t j = 0; j < fx.model.head_dim; ++j) key[j] *= 10.f;
      }
    }
  }
  Context ctx(1, std::vector<int32_t>(n, 3), std::move(kv));
  ASSERT_TRUE(ctx.BuildFineIndices(IndexBuildOptions{}, nullptr, nullptr).ok());

  SessionOptions opts;
  opts.optimizer.short_context_threshold = 64;
  opts.window = WindowConfig{8, 16};
  Session session(fx.model, opts, &ctx, prefix, &fx.env);
  EXPECT_TRUE(session.partial_reuse());
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride), out(qstride);
  fx.rng.FillGaussian(q.data(), qstride);
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    ASSERT_TRUE(session.Attention(layer, q.data(), out.data()).ok());
    for (size_t i = 0; i < qstride; ++i) {
      EXPECT_LT(std::abs(out[i]), 1e4f) << "layer " << layer << " i " << i;
    }
  }
}

TEST(SessionTest, GpuReservationTracksWindowAndLocal) {
  SessionFixture fx;
  SessionOptions opts;
  opts.window = WindowConfig{4, 8};
  Session session(fx.model, opts, nullptr, 0, &fx.env);
  const uint64_t before = fx.env.gpu_memory().current();
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  std::vector<float> k(stride, 1.f), v(stride, 1.f);
  for (int t = 0; t < 5; ++t) {
    for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
      ASSERT_TRUE(session.Update(layer, nullptr, k.data(), v.data()).ok());
    }
  }
  EXPECT_GT(fx.env.gpu_memory().current(), before);
  EXPECT_EQ(fx.env.gpu_memory().current() - before,
            5u * fx.model.KvBytesPerToken());
}

TEST(SessionTest, ErrorsOnBadArguments) {
  SessionFixture fx;
  Session session(fx.model, SessionOptions{}, nullptr, 0, &fx.env);
  std::vector<float> buf(fx.model.num_q_heads * fx.model.head_dim);
  EXPECT_TRUE(session.Update(99, nullptr, buf.data(), buf.data()).code() ==
              StatusCode::kOutOfRange);
  EXPECT_TRUE(session.Update(0, nullptr, nullptr, buf.data()).IsInvalidArgument());
  EXPECT_TRUE(session.Attention(99, buf.data(), buf.data()).code() ==
              StatusCode::kOutOfRange);
  EXPECT_TRUE(session.Attention(0, nullptr, buf.data()).IsInvalidArgument());
}

TEST(SessionTest, RecordingCapsAtMaxTokens) {
  SessionFixture fx;
  SessionOptions opts;
  opts.max_recorded_tokens = 3;
  Session session(fx.model, opts, nullptr, 0, &fx.env);
  const size_t stride = fx.model.num_kv_heads * fx.model.head_dim;
  const size_t qstride = fx.model.num_q_heads * fx.model.head_dim;
  std::vector<float> q(qstride, 1.f), k(stride, 1.f), v(stride, 1.f);
  for (int t = 0; t < 10; ++t) {
    ASSERT_TRUE(session.Update(0, q.data(), k.data(), v.data()).ok());
  }
  EXPECT_EQ(session.recorded_queries()->NumSamples(0), 3u);
}

}  // namespace
}  // namespace alaya
