#include "src/core/kv_cache.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/query_samples.h"

namespace alaya {
namespace {

TEST(ModelConfigTest, ValidationAndDerived) {
  ModelConfig m = ModelConfig::Tiny();
  EXPECT_TRUE(m.Validate().ok());
  EXPECT_EQ(m.GroupSize(), 2u);
  EXPECT_EQ(m.KvHeadForQuery(0), 0u);
  EXPECT_EQ(m.KvHeadForQuery(1), 0u);
  EXPECT_EQ(m.KvHeadForQuery(2), 1u);
  EXPECT_EQ(m.KvHeadForQuery(3), 1u);

  ModelConfig llama = ModelConfig::Llama3_8B();
  EXPECT_TRUE(llama.Validate().ok());
  EXPECT_EQ(llama.GroupSize(), 4u);
  // bf16 KV bytes/token: 2 * 8 heads * 128 dim * 2 B * 32 layers = 131072.
  EXPECT_EQ(llama.KvBytesPerToken(), 131072u);

  ModelConfig bad = ModelConfig::Tiny();
  bad.num_q_heads = 3;  // Not a multiple of 2 KV heads.
  EXPECT_FALSE(bad.Validate().ok());
  bad = ModelConfig::Tiny();
  bad.head_dim = 0;
  EXPECT_FALSE(bad.Validate().ok());
}

TEST(KvCacheTest, AppendTokenAndViews) {
  ModelConfig m = ModelConfig::Tiny();  // 2 layers, 2 kv heads, dim 16.
  KvCache kv(m);
  Rng rng(1);
  std::vector<float> k(m.num_kv_heads * m.head_dim), v(k.size());
  rng.FillGaussian(k.data(), k.size());
  rng.FillGaussian(v.data(), v.size());
  kv.AppendToken(0, k.data(), v.data());
  kv.AppendToken(1, k.data(), v.data());
  EXPECT_EQ(kv.NumTokens(0), 1u);
  EXPECT_EQ(kv.NumTokens(1), 1u);
  // Head 1's key is the second d-sized slice.
  VectorSetView keys = kv.Keys(0, 1);
  ASSERT_EQ(keys.n, 1u);
  for (uint32_t j = 0; j < m.head_dim; ++j) {
    EXPECT_EQ(keys.Vec(0)[j], k[m.head_dim + j]);
  }
}

TEST(KvCacheTest, AppendTokensBatch) {
  ModelConfig m = ModelConfig::Tiny();
  KvCache kv(m);
  Rng rng(2);
  const size_t count = 10;
  const size_t stride = m.num_kv_heads * m.head_dim;
  std::vector<float> k(count * stride), v(count * stride);
  rng.FillGaussian(k.data(), k.size());
  rng.FillGaussian(v.data(), v.size());
  kv.AppendTokens(0, count, k.data(), v.data());
  EXPECT_EQ(kv.NumTokens(0), count);
  // Token 7, head 0 matches slice 7.
  VectorSetView keys = kv.Keys(0, 0);
  for (uint32_t j = 0; j < m.head_dim; ++j) {
    EXPECT_EQ(keys.Vec(7)[j], k[7 * stride + j]);
  }
}

TEST(KvCacheTest, PrefixCloneMatches) {
  ModelConfig m = ModelConfig::Tiny();
  KvCache src(m);
  Rng rng(3);
  const size_t stride = m.num_kv_heads * m.head_dim;
  std::vector<float> k(stride), v(stride);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (int t = 0; t < 20; ++t) {
      rng.FillGaussian(k.data(), stride);
      rng.FillGaussian(v.data(), stride);
      src.AppendToken(layer, k.data(), v.data());
    }
  }
  KvCache dst(m);
  ASSERT_TRUE(dst.AppendPrefixFrom(src, 12).ok());
  EXPECT_EQ(dst.NumTokens(0), 12u);
  EXPECT_EQ(dst.NumTokens(1), 12u);
  for (uint32_t h = 0; h < m.num_kv_heads; ++h) {
    for (uint32_t t = 0; t < 12; ++t) {
      for (uint32_t j = 0; j < m.head_dim; ++j) {
        EXPECT_EQ(dst.Keys(1, h).Vec(t)[j], src.Keys(1, h).Vec(t)[j]);
      }
    }
  }
}

TEST(KvCacheTest, PrefixCloneErrors) {
  KvCache a(ModelConfig::Tiny());
  KvCache b(ModelConfig::Tiny());
  EXPECT_TRUE(b.AppendPrefixFrom(a, 5).code() == StatusCode::kOutOfRange);
  ModelConfig other = ModelConfig::Tiny();
  other.head_dim = 32;
  KvCache c(other);
  EXPECT_TRUE(c.AppendPrefixFrom(a, 0).IsInvalidArgument());
}

TEST(KvCacheTest, DeployedBytesUsesModelPrecision) {
  ModelConfig m = ModelConfig::Tiny();
  KvCache kv(m);
  std::vector<float> k(m.num_kv_heads * m.head_dim, 1.f);
  for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
    for (int t = 0; t < 10; ++t) kv.AppendToken(layer, k.data(), k.data());
  }
  EXPECT_EQ(kv.DeployedBytes(), 10u * m.KvBytesPerToken());
  EXPECT_GT(kv.FloatBytes(), 0u);
}

TEST(QuerySamplesTest, RecordAndView) {
  ModelConfig m = ModelConfig::Tiny();
  QuerySamples qs(m);
  Rng rng(4);
  std::vector<float> q(m.num_q_heads * m.head_dim);
  rng.FillGaussian(q.data(), q.size());
  qs.Record(0, q.data());
  qs.Record(0, q.data());
  EXPECT_EQ(qs.NumSamples(0), 2u);
  EXPECT_EQ(qs.NumSamples(1), 0u);
  VectorSetView view = qs.View(0, 3);
  ASSERT_EQ(view.n, 2u);
  for (uint32_t j = 0; j < m.head_dim; ++j) {
    EXPECT_EQ(view.Vec(0)[j], q[3 * m.head_dim + j]);
  }
  EXPECT_GT(qs.FloatBytes(), 0u);
}

TEST(VectorSetTest, TruncateAndReserve) {
  VectorSet set(4);
  std::vector<float> v = {1, 2, 3, 4};
  set.Reserve(10);
  set.Append(v.data());
  set.Append(v.data());
  EXPECT_EQ(set.size(), 2u);
  set.Truncate(1);
  EXPECT_EQ(set.size(), 1u);
  EXPECT_EQ(set.Vec(0)[0], 1.f);
}

}  // namespace
}  // namespace alaya
