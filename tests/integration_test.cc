// End-to-end integration: synthetic context -> DB.Import -> session reuse ->
// sparse decoding -> DB.Store -> second session over the extended context.
#include <gtest/gtest.h>

#include <cmath>

#include "src/core/alaya_db.h"
#include "src/llm/inference_sim.h"
#include "src/llm/qkv_generator.h"
#include "src/llm/quality.h"

namespace alaya {
namespace {

struct E2eFixture {
  SyntheticContextOptions opts;
  SyntheticContext ctx;
  SimEnvironment env;
  DbOptions db_options;

  E2eFixture() : opts(MakeOptions()), ctx(opts) {
    Status st = ctx.Generate();
    EXPECT_TRUE(st.ok()) << st.ToString();
    db_options.model = opts.model;
    db_options.session.optimizer.short_context_threshold = 512;
    db_options.session.window = WindowConfig{32, 128};
    db_options.session.gpu_budget_bytes = 0;  // Tight budget -> DIPR plans.
  }

  static SyntheticContextOptions MakeOptions() {
    SyntheticContextOptions o;
    o.model = ModelConfig{2, 4, 2, 64, 2};
    o.spec = FindTask(InfinityBenchSuite(0.03), "En.QA");
    return o;
  }

  float DiprBeta() const {
    return static_cast<float>(SuggestedDiprBeta(opts.spec, 64));
  }
};

TEST(IntegrationTest, ImportReuseDecodeStoreRoundtrip) {
  E2eFixture fx;
  fx.db_options.session.optimizer.dipr.beta = fx.DiprBeta();
  fx.db_options.session.optimizer.dipr.l0 = 128;
  AlayaDB db(fx.db_options, &fx.env);

  // Import the long context (KV + prefill training queries).
  auto training = fx.ctx.MakeTrainingQueries(256);
  std::vector<int32_t> tokens = fx.ctx.tokens();
  auto kv_copy = std::make_unique<KvCache>(fx.opts.model);
  ASSERT_TRUE(kv_copy->AppendAllFrom(fx.ctx.kv()).ok());
  auto imported = db.Import(tokens, std::move(kv_copy), training.get());
  ASSERT_TRUE(imported.ok()) << imported.status().ToString();

  // A session over the same prompt fully reuses the context.
  auto created = db.CreateSession(tokens);
  ASSERT_TRUE(created.ok());
  ASSERT_EQ(created.value().reused_prefix, tokens.size());
  Session* session = created.value().session.get();

  // Decode: session sparse attention should track the planted oracle well.
  const size_t d = fx.opts.model.head_dim;
  const size_t qstride = fx.opts.model.num_q_heads * d;
  std::vector<float> q(qstride), out(qstride), oracle(d);
  MeanAccumulator fidelity;
  AttentionCallStats stats;
  for (size_t step = 0; step < 3; ++step) {
    for (uint32_t layer = 0; layer < fx.opts.model.num_layers; ++layer) {
      fx.ctx.MakeDecodeQueryLayer(step, layer, q.data());
      ASSERT_TRUE(session->Attention(layer, q.data(), out.data(), &stats).ok());
      for (uint32_t h = 0; h < fx.opts.model.num_q_heads; ++h) {
        fx.ctx.OracleOutput(step, layer, h, oracle.data());
        fidelity.Add(CosineFidelity(out.data() + h * d, oracle.data(), d));
      }
    }
  }
  EXPECT_GT(fidelity.Mean(), 0.8) << "sparse session diverged from the oracle";
  EXPECT_GT(stats.retrieved_tokens, 0u);

  // Append a short "generation" and store; the new context is reusable.
  Rng rng(5);
  const size_t kv_stride = fx.opts.model.num_kv_heads * d;
  std::vector<float> k(kv_stride), v(kv_stride);
  std::vector<int32_t> new_tokens;
  for (int t = 0; t < 4; ++t) {
    for (uint32_t layer = 0; layer < fx.opts.model.num_layers; ++layer) {
      rng.FillGaussian(q.data(), qstride);
      rng.FillGaussian(k.data(), kv_stride);
      rng.FillGaussian(v.data(), kv_stride);
      ASSERT_TRUE(session->Update(layer, q.data(), k.data(), v.data()).ok());
    }
    new_tokens.push_back(-100 - t);
  }
  auto stored = db.Store(session, new_tokens);
  ASSERT_TRUE(stored.ok()) << stored.status().ToString();

  std::vector<int32_t> extended = tokens;
  extended.insert(extended.end(), new_tokens.begin(), new_tokens.end());
  auto again = db.CreateSession(extended);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again.value().reused_prefix, extended.size());
}

TEST(IntegrationTest, PartialReuseSessionAnswersFromPrefixOnly) {
  E2eFixture fx;
  fx.db_options.session.optimizer.dipr.beta = fx.DiprBeta();
  AlayaDB db(fx.db_options, &fx.env);

  auto training = fx.ctx.MakeTrainingQueries(128);
  auto kv_copy = std::make_unique<KvCache>(fx.opts.model);
  ASSERT_TRUE(kv_copy->AppendAllFrom(fx.ctx.kv()).ok());
  ASSERT_TRUE(db.Import(fx.ctx.tokens(), std::move(kv_copy), training.get()).ok());

  // User B shares only 60% of the stored context.
  const size_t prefix = fx.ctx.tokens().size() * 6 / 10;
  std::vector<int32_t> prompt(fx.ctx.tokens().begin(),
                              fx.ctx.tokens().begin() + prefix);
  prompt.push_back(-1);  // New question diverges here.
  auto created = db.CreateSession(prompt);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(created.value().reused_prefix, prefix);
  Session* session = created.value().session.get();
  EXPECT_TRUE(session->partial_reuse());

  const size_t d = fx.opts.model.head_dim;
  const size_t qstride = fx.opts.model.num_q_heads * d;
  std::vector<float> q(qstride), out(qstride);
  AttentionCallStats stats;
  fx.ctx.MakeDecodeQueryLayer(0, 1, q.data());
  ASSERT_TRUE(session->Attention(1, q.data(), out.data(), &stats).ok());
  EXPECT_NE(stats.plan_explain.find("attribute_filter"), std::string::npos);
  EXPECT_GT(stats.attended_tokens, 0u);
}

TEST(IntegrationTest, SessionBeatsWindowOnlyBaseline) {
  // The AlayaDB session (DIPR retrieval) must clearly out-recover a
  // window-only configuration on a retrieval-heavy task.
  E2eFixture fx;
  fx.db_options.session.optimizer.dipr.beta = fx.DiprBeta();
  fx.db_options.session.optimizer.dipr.l0 = 128;
  AlayaDB db(fx.db_options, &fx.env);
  auto training = fx.ctx.MakeTrainingQueries(256);
  auto kv_copy = std::make_unique<KvCache>(fx.opts.model);
  ASSERT_TRUE(kv_copy->AppendAllFrom(fx.ctx.kv()).ok());
  ASSERT_TRUE(db.Import(fx.ctx.tokens(), std::move(kv_copy), training.get()).ok());

  auto with_index = db.CreateSession(fx.ctx.tokens());
  ASSERT_TRUE(with_index.ok());

  // Window-only: same session machinery with retrieval effectively disabled
  // (beta so small only the max survives).
  DbOptions window_only = fx.db_options;
  window_only.session.optimizer.dipr.beta = 0.01f;
  window_only.session.optimizer.dipr.l0 = 1;
  AlayaDB db2(window_only, &fx.env);
  auto kv_copy2 = std::make_unique<KvCache>(fx.opts.model);
  ASSERT_TRUE(kv_copy2->AppendAllFrom(fx.ctx.kv()).ok());
  ASSERT_TRUE(db2.Import(fx.ctx.tokens(), std::move(kv_copy2), training.get()).ok());
  auto windowed = db2.CreateSession(fx.ctx.tokens());
  ASSERT_TRUE(windowed.ok());

  const size_t d = fx.opts.model.head_dim;
  const size_t qstride = fx.opts.model.num_q_heads * d;
  std::vector<float> q(qstride), out(qstride), oracle(d);
  MeanAccumulator fid_index, fid_window;
  for (size_t step = 0; step < 2; ++step) {
    for (uint32_t layer = 0; layer < fx.opts.model.num_layers; ++layer) {
      fx.ctx.MakeDecodeQueryLayer(step, layer, q.data());
      ASSERT_TRUE(
          with_index.value().session->Attention(layer, q.data(), out.data()).ok());
      for (uint32_t h = 0; h < fx.opts.model.num_q_heads; ++h) {
        fx.ctx.OracleOutput(step, layer, h, oracle.data());
        fid_index.Add(CosineFidelity(out.data() + h * d, oracle.data(), d));
      }
      ASSERT_TRUE(
          windowed.value().session->Attention(layer, q.data(), out.data()).ok());
      for (uint32_t h = 0; h < fx.opts.model.num_q_heads; ++h) {
        fx.ctx.OracleOutput(step, layer, h, oracle.data());
        fid_window.Add(CosineFidelity(out.data() + h * d, oracle.data(), d));
      }
    }
  }
  EXPECT_GT(fid_index.Mean(), fid_window.Mean() + 0.1);
}

}  // namespace
}  // namespace alaya
