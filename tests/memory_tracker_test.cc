#include "src/device/memory_tracker.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace alaya {
namespace {

TEST(MemoryTrackerTest, AllocateFreeAndPeak) {
  MemoryTracker t(MemoryTier::kGpu);
  t.Allocate(100);
  t.Allocate(50);
  EXPECT_EQ(t.current(), 150u);
  EXPECT_EQ(t.peak(), 150u);
  t.Free(120);
  EXPECT_EQ(t.current(), 30u);
  EXPECT_EQ(t.peak(), 150u);
  t.Allocate(10);
  EXPECT_EQ(t.peak(), 150u);  // Peak unchanged below the high-water mark.
}

TEST(MemoryTrackerTest, ResetPeak) {
  MemoryTracker t(MemoryTier::kHost);
  t.Allocate(100);
  t.Free(90);
  t.ResetPeak();
  EXPECT_EQ(t.peak(), 10u);
}

TEST(MemoryTrackerTest, ConcurrentUpdatesBalance) {
  MemoryTracker t(MemoryTier::kGpu);
  std::vector<std::thread> threads;
  for (int i = 0; i < 8; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 10000; ++j) {
        t.Allocate(3);
        t.Free(3);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(t.current(), 0u);
}

TEST(MemoryTrackerTest, TierNames) {
  EXPECT_STREQ(MemoryTierName(MemoryTier::kGpu), "GPU");
  EXPECT_STREQ(MemoryTierName(MemoryTier::kHost), "HOST");
  EXPECT_STREQ(MemoryTierName(MemoryTier::kDisk), "DISK");
  MemoryTracker t(MemoryTier::kGpu);
  t.Allocate(2048);
  EXPECT_NE(t.ToString().find("GPU"), std::string::npos);
}

TEST(MemoryReservationTest, RaiiFreesOnDestruction) {
  MemoryTracker t(MemoryTier::kGpu);
  {
    MemoryReservation r(&t, 1000);
    EXPECT_EQ(t.current(), 1000u);
  }
  EXPECT_EQ(t.current(), 0u);
}

TEST(MemoryReservationTest, MoveTransfersOwnership) {
  MemoryTracker t(MemoryTier::kGpu);
  MemoryReservation a(&t, 500);
  MemoryReservation b = std::move(a);
  EXPECT_EQ(t.current(), 500u);
  EXPECT_EQ(b.bytes(), 500u);
  EXPECT_EQ(a.bytes(), 0u);
  b.Release();
  EXPECT_EQ(t.current(), 0u);
}

TEST(MemoryReservationTest, ResizeGrowsAndShrinks) {
  MemoryTracker t(MemoryTier::kGpu);
  MemoryReservation r(&t, 100);
  r.ResizeTo(250);
  EXPECT_EQ(t.current(), 250u);
  r.ResizeTo(50);
  EXPECT_EQ(t.current(), 50u);
  r.ResizeTo(50);
  EXPECT_EQ(t.current(), 50u);
}

TEST(MemoryReservationTest, DefaultIsEmpty) {
  MemoryReservation r;
  EXPECT_EQ(r.bytes(), 0u);
  r.Release();  // No-op, no crash.
}

}  // namespace
}  // namespace alaya
