// Cost-aware preemption victim ranking: FairSharePolicy::RankVictims weighs a
// suspension's park cost (device-resident KV moved out now and back at
// resume, ~ gpu_bytes) against the device time the victim's REMAINING work
// would have held. The bargain victim is the long-running request with modest
// KV; the anti-victim is the heavyweight about to finish (its slot frees soon
// anyway — parking its KV is pure waste). Also covers the scheduler-level
// plumbing: RecordProgress shrinks a victim's remaining seconds and thereby
// changes who Admit() advises suspending.
#include <gtest/gtest.h>

#include <chrono>
#include <vector>

#include "src/device/device.h"
#include "src/server/request_scheduler.h"
#include "src/server/scheduling_policy.h"

namespace alaya {
namespace {

RunningRequestView View(uint64_t id, int priority, uint64_t gpu_bytes,
                        double remaining_seconds, uint64_t admit_order = 0) {
  RunningRequestView v;
  v.id = id;
  v.priority = priority;
  v.gpu_bytes = gpu_bytes;
  v.remaining_seconds = remaining_seconds;
  v.admit_order = admit_order;
  return v;
}

QueuedRequestView Blocked(int priority) {
  QueuedRequestView q;
  q.id = 999;
  q.priority = priority;
  return q;
}

TEST(VictimRankingTest, CheaperParkCostPerRemainingSecondWinsOverLessWork) {
  FairSharePolicy policy;
  // Victim 1: large KV but a long decode ahead (score 1000/10 = 100 bytes/s).
  // Victim 2: smaller KV yet nearly done (score 800/0.5 = 1600 bytes/s) —
  // under the old (priority, deadline, age) tuple its age would have decided;
  // cost-aware ranking parks the long-runner instead.
  const std::vector<RunningRequestView> running = {
      View(/*id=*/1, /*priority=*/0, /*gpu_bytes=*/1000, /*remaining=*/10.0),
      View(/*id=*/2, /*priority=*/0, /*gpu_bytes=*/800, /*remaining=*/0.5),
  };
  const std::vector<uint64_t> ranked = policy.RankVictims(Blocked(1), running);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 1u);
  EXPECT_EQ(ranked[1], 2u);
}

TEST(VictimRankingTest, OnlyStrictlyLowerClassesAreRanked) {
  FairSharePolicy policy;
  const std::vector<RunningRequestView> running = {
      View(1, /*priority=*/0, 100, 1.0),
      View(2, /*priority=*/1, 100, 1.0),  // Same class as blocked: untouchable.
      View(3, /*priority=*/2, 100, 1.0),  // Higher class: untouchable.
  };
  const std::vector<uint64_t> ranked = policy.RankVictims(Blocked(1), running);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked[0], 1u);
}

TEST(VictimRankingTest, LowerClassOutranksScoreAndTiesFallBackDeterministic) {
  FairSharePolicy policy;
  // Class trumps cost: a priority-0 victim ranks before a cheaper priority-1
  // victim when priority-2 is blocked.
  const std::vector<RunningRequestView> by_class = {
      View(1, /*priority=*/1, /*gpu_bytes=*/10, /*remaining=*/10.0),  // score 1
      View(2, /*priority=*/0, /*gpu_bytes=*/1000, /*remaining=*/1.0),  // 1000
  };
  const std::vector<uint64_t> ranked = policy.RankVictims(Blocked(2), by_class);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);

  // Identical scores (equal geometry): the most recently admitted parks first
  // (least sunk work), keeping the ranking deterministic.
  const std::vector<RunningRequestView> tied = {
      View(1, 0, 100, 1.0, /*admit_order=*/1),
      View(2, 0, 100, 1.0, /*admit_order=*/2),
  };
  const std::vector<uint64_t> tie_ranked = policy.RankVictims(Blocked(1), tied);
  ASSERT_EQ(tie_ranked.size(), 2u);
  EXPECT_EQ(tie_ranked[0], 2u);
  EXPECT_EQ(tie_ranked[1], 1u);
}

TEST(VictimRankingTest, ZeroRemainingDoesNotDivide) {
  FairSharePolicy policy;
  // A victim whose modeled work is fully consumed (remaining 0) must rank
  // LAST — it retires imminently on its own — and must not trip the division.
  const std::vector<RunningRequestView> running = {
      View(1, 0, 100, 0.0),
      View(2, 0, 100, 5.0),
  };
  const std::vector<uint64_t> ranked = policy.RankVictims(Blocked(1), running);
  ASSERT_EQ(ranked.size(), 2u);
  EXPECT_EQ(ranked[0], 2u);
  EXPECT_EQ(ranked[1], 1u);
}

/// End-to-end through the scheduler: RecordProgress feeds
/// RunningRequestView::remaining_seconds, so progress on one of two identical
/// victims flips which one Admit() advises suspending.
TEST(VictimRankingTest, RecordedProgressChangesAdvisedVictim) {
  const ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  auto make_request = [] {
    ServingRequest r;
    r.prompt.assign(64, 7);
    r.max_new_tokens = 16;
    r.fill_step = [](size_t, uint32_t, float*, float*, float*) {};
    r.fill_prompt = [](size_t, uint32_t, float*, float*, float*) {};
    return r;
  };

  auto run_scenario = [&](bool progress_on_second) -> std::vector<uint64_t> {
    RequestSchedulerOptions opts;
    opts.max_concurrent_sessions = 2;
    RequestScheduler sched(model, WindowConfig{8, 16}, env.cost_model(), opts);
    auto a = sched.Enqueue(make_request());
    auto b = sched.Enqueue(make_request());
    EXPECT_TRUE(a.ok() && b.ok());
    const std::vector<RequestScheduler::Admitted> admitted = sched.Admit();
    EXPECT_EQ(admitted.size(), 2u);
    if (progress_on_second) {
      // Half of the second request's modeled work is done: its remaining
      // seconds halve, its park score doubles, and it stops being the
      // preferred victim despite being the most recently admitted.
      sched.RecordProgress(b.value(),
                           admitted[1].estimate.total_gpu_seconds / 2);
    }
    ServingRequest high = make_request();
    high.priority = 1;
    EXPECT_TRUE(sched.Enqueue(std::move(high)).ok());
    std::vector<uint64_t> victims;
    const auto blocked = sched.Admit(&victims);  // Slots full: must advise.
    EXPECT_TRUE(blocked.empty());
    return victims;
  };

  // Baseline: identical victims tie on score; the newest admission (the
  // second request, id 2) parks first.
  const std::vector<uint64_t> untouched = run_scenario(false);
  ASSERT_EQ(untouched.size(), 1u);
  EXPECT_EQ(untouched[0], 2u);

  // With progress recorded on the second request, the first one becomes the
  // cheaper park (more remaining work for the same KV) and is advised instead.
  const std::vector<uint64_t> progressed = run_scenario(true);
  ASSERT_EQ(progressed.size(), 1u);
  EXPECT_EQ(progressed[0], 1u);
}

}  // namespace
}  // namespace alaya
