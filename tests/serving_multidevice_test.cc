// Sharded serving: placement-aware admission across a DeviceSet. Verifies the
// ISSUE-5 acceptance bar: with devices=1 nothing changes (the engine IS the
// single-device engine), with devices=N requests spread across >= 2 devices
// while every device's reserved bytes stay under the per-device budget, and —
// the core invariant — every request's outputs are bit-identical to the
// single-device golden: placement moves sessions between devices, never their
// math. Also covers the cross-device reuse transfer (charged once, residency
// re-homed) and affinity routing to the warm device.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

/// Like ServingFixture, but with several tenants: one stored context per
/// tenant (token sequences are prefix-disjoint), each request fully reusing
/// its tenant's context.
struct MultiDeviceFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  size_t tenants = 4;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  std::vector<uint64_t> context_ids;
  ThreadPool pool{4};

  explicit MultiDeviceFixture(size_t num_tenants = 4) : tenants(num_tenants) {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    options.materialize_pool = &pool;
    db = std::make_unique<AlayaDB>(options, &env);
    for (size_t t = 0; t < tenants; ++t) {
      auto imported = db->Import(ContextTokens(t), MakeKv(/*seed=*/1 + t));
      EXPECT_TRUE(imported.ok()) << imported.status().ToString();
      context_ids.push_back(imported.ValueOr(0));
    }
  }

  ServingEngineOptions EngineOptions(size_t max_concurrent, size_t devices) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.devices = devices;
    o.pool = &pool;
    return o;
  }

  std::vector<int32_t> ContextTokens(size_t tenant) const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) {
      t[i] = static_cast<int32_t>(1000 * (tenant + 1) + i);  // Prefix-disjoint.
    }
    return t;
  }

  std::unique_ptr<KvCache> MakeKv(uint64_t seed) const {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < context_tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  /// Deterministic in (seed, step, layer): the concurrent==sequential (and
  /// now any-fleet-size) determinism contract.
  ServingRequest MakeRequest(size_t tenant, uint64_t seed, size_t steps) const {
    ServingRequest r;
    r.prompt = ContextTokens(tenant);
    r.max_new_tokens = steps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    return r;
  }
};

TEST(ServingMultiDeviceTest, FourDevicesMatchSingleDeviceGoldenBitIdentical) {
  constexpr size_t kSteps = 4;
  constexpr size_t kDevices = 4;

  // Golden: the default single-device engine.
  MultiDeviceFixture golden_fx;
  ServingEngine golden(golden_fx.db.get(), golden_fx.EngineOptions(4, 1));
  std::vector<uint64_t> gids;
  for (size_t t = 0; t < golden_fx.tenants; ++t) {
    auto h = golden.Submit(golden_fx.MakeRequest(t, 11 + t, kSteps));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    gids.push_back(h.value().id());
  }
  ASSERT_TRUE(golden.RunToCompletion().ok());
  // devices=1: one snapshot entry mirroring the aggregates.
  const ServingSnapshot gsnap = golden.snapshot();
  ASSERT_EQ(gsnap.devices.size(), 1u);
  EXPECT_EQ(gsnap.devices[0].placements, golden_fx.tenants);
  EXPECT_EQ(gsnap.devices[0].tokens_decoded, gsnap.tokens_decoded);
  EXPECT_EQ(gsnap.devices[0].peak_gpu_bytes, gsnap.peak_gpu_bytes);
  EXPECT_EQ(gsnap.devices[0].cross_device_reuses, 0u);

  // Sharded run: a per-device budget that holds exactly one projected session
  // forces best-fit to spread the four tenants across the fleet.
  MultiDeviceFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(4, kDevices);
  {
    ServingEngine sizer(fx.db.get(), opts);
    opts.scheduler.gpu_budget_bytes =
        sizer.scheduler().Estimate(fx.MakeRequest(0, 11, kSteps)).gpu_bytes;
    ASSERT_GT(opts.scheduler.gpu_budget_bytes, 0u);
  }
  ServingEngine engine(fx.db.get(), opts);
  std::vector<uint64_t> ids;
  for (size_t t = 0; t < fx.tenants; ++t) {
    auto h = engine.Submit(fx.MakeRequest(t, 11 + t, kSteps));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ids.push_back(h.value().id());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());

  // Outputs are bit-identical per request: placement changes devices, not math.
  for (size_t t = 0; t < fx.tenants; ++t) {
    const RequestResult* m = engine.result(ids[t]);
    const RequestResult* g = golden.result(gids[t]);
    ASSERT_NE(m, nullptr);
    ASSERT_NE(g, nullptr);
    ASSERT_TRUE(m->status.ok()) << m->status.ToString();
    ASSERT_TRUE(g->status.ok()) << g->status.ToString();
    EXPECT_EQ(m->steps_completed, kSteps);
    ASSERT_EQ(m->outputs.size(), g->outputs.size());
    EXPECT_EQ(m->outputs, g->outputs) << "tenant " << t;
  }

  // Distribution: sessions landed on >= 2 devices (here: all four — the
  // budget fits one session per device), every device's reservation stayed
  // under its budget, and per-device counters reconcile with the aggregates.
  const ServingSnapshot snap = engine.snapshot();
  ASSERT_EQ(snap.devices.size(), kDevices);
  size_t devices_used = 0, placements = 0, tokens = 0;
  for (const DeviceServingStats& ds : snap.devices) {
    if (ds.placements > 0) ++devices_used;
    placements += ds.placements;
    tokens += ds.tokens_decoded;
    EXPECT_LE(ds.peak_gpu_bytes, opts.scheduler.gpu_budget_bytes)
        << "device " << ds.device << " overflowed its budget";
    EXPECT_EQ(ds.reserved_bytes, 0u) << "leaked reservation on " << ds.device;
    EXPECT_EQ(ds.active_sessions, 0u);
    EXPECT_GT(ds.modeled_busy_seconds, 0.0) << "device " << ds.device << " idle";
  }
  EXPECT_GE(devices_used, 2u);
  EXPECT_EQ(devices_used, kDevices);  // One per device with this budget.
  EXPECT_EQ(placements, fx.tenants);
  EXPECT_EQ(tokens, snap.tokens_decoded);
  EXPECT_EQ(snap.tokens_decoded, fx.tenants * kSteps);
}

TEST(ServingMultiDeviceTest, CrossDeviceReuseChargesTransferAndRehomesContext) {
  // One tenant, two requests over the same stored context, per-device budget
  // holding one session: the first lands on the context's warm device 0
  // (affinity), the second spills to device 1 and pays the modeled window
  // transfer; the context's residency follows it.
  constexpr size_t kSteps = 3;
  MultiDeviceFixture fx(/*num_tenants=*/1);
  ServingEngineOptions opts = fx.EngineOptions(2, 2);
  {
    ServingEngine sizer(fx.db.get(), opts);
    opts.scheduler.gpu_budget_bytes =
        sizer.scheduler().Estimate(fx.MakeRequest(0, 7, kSteps)).gpu_bytes;
  }
  ServingEngine engine(fx.db.get(), opts);
  auto a = engine.Submit(fx.MakeRequest(0, 7, kSteps));
  auto b = engine.Submit(fx.MakeRequest(0, 8, kSteps));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());
  ASSERT_TRUE(a.value().Wait()->status.ok());
  ASSERT_TRUE(b.value().Wait()->status.ok());

  const ServingSnapshot snap = engine.snapshot();
  ASSERT_EQ(snap.devices.size(), 2u);
  EXPECT_EQ(snap.devices[0].placements, 1u);
  EXPECT_EQ(snap.devices[1].placements, 1u);
  // Device 0 reused warm KV; device 1 pulled the context window across.
  EXPECT_EQ(snap.devices[0].cross_device_reuses, 0u);
  EXPECT_EQ(snap.devices[0].transfer_bytes, 0u);
  EXPECT_EQ(snap.devices[1].cross_device_reuses, 1u);
  EXPECT_GT(snap.devices[1].transfer_bytes, 0u);
  // The transfer covers the device-resident window drawn from the context.
  const WindowCache window(fx.options.session.window);
  const size_t window_tokens =
      std::min(window.Size(fx.context_tokens), fx.context_tokens);
  EXPECT_EQ(snap.devices[1].transfer_bytes,
            window_tokens * fx.model.KvBytesPerToken());
  // Residency moved with the last user (last-user-wins).
  const Context* ctx = fx.db->contexts().FindUnsafeForTest(fx.context_ids[0]);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->resident_device(), 1);
}

TEST(ServingMultiDeviceTest, AffinityRoutesRequestsToWarmDevices) {
  // Contexts sharded across the fleet (as if a prior run left one warm per
  // device): affinity places each tenant's request on its context's device —
  // full distribution with zero cross-device transfers and no budget pressure.
  constexpr size_t kSteps = 2;
  MultiDeviceFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(4, 4);
  for (size_t t = 0; t < fx.tenants; ++t) {
    fx.db->contexts().FindShared(fx.context_ids[t])->set_resident_device(static_cast<int>(t));
  }
  ServingEngine engine(fx.db.get(), opts);
  std::vector<RequestHandle> handles;
  for (size_t t = 0; t < fx.tenants; ++t) {
    auto h = engine.Submit(fx.MakeRequest(t, 21 + t, kSteps));
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  for (RequestHandle& h : handles) ASSERT_TRUE(h.Wait()->status.ok());

  const ServingSnapshot snap = engine.snapshot();
  ASSERT_EQ(snap.devices.size(), 4u);
  for (size_t d = 0; d < 4; ++d) {
    EXPECT_EQ(snap.devices[d].placements, 1u) << "device " << d;
    EXPECT_EQ(snap.devices[d].cross_device_reuses, 0u) << "device " << d;
    EXPECT_EQ(snap.devices[d].tokens_decoded, kSteps) << "device " << d;
  }
}

TEST(ServingMultiDeviceTest, CustomPolicyNeverFitsFailsRequestTyped) {
  // A pluggable policy may declare a request permanently unplaceable at
  // admission time (heterogeneous budgets the uniform Enqueue pre-check can't
  // see). The head must not wedge the queue: it retires with a typed
  // kNeverFits result and the engine drains to idle.
  struct RejectAllPlacement : PlacementPolicy {
    PlacementDecision Place(const PlacementRequest&, std::span<const DeviceLoad>,
                            double) const override {
      PlacementDecision d;
      d.never_fits = true;
      return d;
    }
  };
  MultiDeviceFixture fx(/*num_tenants=*/1);
  ServingEngineOptions opts = fx.EngineOptions(2, 2);
  opts.scheduler.placement = std::make_shared<RejectAllPlacement>();
  ServingEngine engine(fx.db.get(), opts);
  auto h = engine.Submit(fx.MakeRequest(0, 41, 2));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());
  const RequestResult* r = h.value().Wait();
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->status.code(), StatusCode::kNeverFits);
  EXPECT_EQ(r->steps_completed, 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.snapshot().completed, 1u);
}

TEST(ServingMultiDeviceTest, StoredContextIsWarmOnItsSessionsDevice) {
  // store_on_finish on a sharded fleet: the materialized context's residency
  // is the device its session decoded on, so follow-up prompts route there.
  constexpr size_t kSteps = 3;
  MultiDeviceFixture fx(/*num_tenants=*/2);
  // Warm tenant 1's context on device 1 so its request places there.
  fx.db->contexts().FindShared(fx.context_ids[1])->set_resident_device(1);
  ServingEngineOptions opts = fx.EngineOptions(2, 2);
  ServingEngine engine(fx.db.get(), opts);
  ServingRequest req = fx.MakeRequest(1, 31, kSteps);
  req.store_on_finish = true;
  auto h = engine.Submit(std::move(req));
  ASSERT_TRUE(h.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());
  const RequestResult* r = h.value().Wait();
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  ASSERT_NE(r->stored_context_id, 0u);

  const Context* stored = fx.db->contexts().FindUnsafeForTest(r->stored_context_id);
  ASSERT_NE(stored, nullptr);
  EXPECT_EQ(stored->resident_device(), 1);
  // And the affinity probe reports it for extended prompts.
  const ContextStore::PrefixProbe probe =
      fx.db->contexts().BestPrefixProbe(stored->tokens());
  EXPECT_EQ(probe.matched, stored->length());
  EXPECT_EQ(probe.context_id, r->stored_context_id);
  EXPECT_EQ(probe.device, 1);
}

}  // namespace
}  // namespace alaya
