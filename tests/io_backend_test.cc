#include "src/storage/io_backend.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace alaya {
namespace {

TEST(MemIoBackendTest, WriteReadRoundtrip) {
  MemIoBackend io;
  const std::string data = "hello vector world";
  ASSERT_TRUE(io.Write(10, data.data(), data.size()).ok());
  EXPECT_EQ(io.Size(), 10 + data.size());
  std::string out(data.size(), '\0');
  ASSERT_TRUE(io.Read(10, out.data(), out.size()).ok());
  EXPECT_EQ(out, data);
}

TEST(MemIoBackendTest, ReadPastEndFails) {
  MemIoBackend io;
  char buf[4];
  EXPECT_TRUE(io.Read(0, buf, 4).code() == StatusCode::kOutOfRange);
  ASSERT_TRUE(io.Write(0, "ab", 2).ok());
  EXPECT_FALSE(io.Read(0, buf, 4).ok());
}

TEST(MemIoBackendTest, SparseWriteZeroFills) {
  MemIoBackend io;
  ASSERT_TRUE(io.Write(100, "x", 1).ok());
  char c = 'z';
  ASSERT_TRUE(io.Read(50, &c, 1).ok());
  EXPECT_EQ(c, '\0');
}

class PosixIoBackendTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = testing::TempDir() + "/alaya_io_test_" +
            std::to_string(reinterpret_cast<uintptr_t>(this)) + ".bin";
    std::remove(path_.c_str());
  }
  void TearDown() override { std::remove(path_.c_str()); }
  std::string path_;
};

TEST_F(PosixIoBackendTest, CreateWriteReadSync) {
  auto r = PosixIoBackend::Open(path_, /*create=*/true);
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  auto io = r.TakeValue();
  const std::string data(8192, 'q');
  ASSERT_TRUE(io->Write(0, data.data(), data.size()).ok());
  ASSERT_TRUE(io->Sync().ok());
  EXPECT_EQ(io->Size(), 8192u);
  std::string out(100, '\0');
  ASSERT_TRUE(io->Read(4000, out.data(), out.size()).ok());
  EXPECT_EQ(out, std::string(100, 'q'));
}

TEST_F(PosixIoBackendTest, ReopenSeesData) {
  {
    auto io = PosixIoBackend::Open(path_, true).TakeValue();
    ASSERT_TRUE(io->Write(0, "persist", 7).ok());
  }
  auto r = PosixIoBackend::Open(path_, false);
  ASSERT_TRUE(r.ok());
  char buf[7];
  ASSERT_TRUE(r.value()->Read(0, buf, 7).ok());
  EXPECT_EQ(std::string(buf, 7), "persist");
}

TEST_F(PosixIoBackendTest, OpenMissingWithoutCreateFails) {
  auto r = PosixIoBackend::Open(path_, /*create=*/false);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsIoError());
}

TEST_F(PosixIoBackendTest, ReadPastEofFails) {
  auto io = PosixIoBackend::Open(path_, true).TakeValue();
  ASSERT_TRUE(io->Write(0, "ab", 2).ok());
  char buf[8];
  EXPECT_FALSE(io->Read(0, buf, 8).ok());
}

}  // namespace
}  // namespace alaya
