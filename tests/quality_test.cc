#include "src/llm/quality.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

TEST(QualityTest, CosineFidelityClamped) {
  const float a[] = {1.f, 0.f};
  const float b[] = {1.f, 0.f};
  const float c[] = {-1.f, 0.f};
  EXPECT_NEAR(CosineFidelity(a, b, 2), 1.0, 1e-6);
  EXPECT_EQ(CosineFidelity(a, c, 2), 0.0);  // Negative cosine clamps to 0.
}

TEST(QualityTest, AnchoredScoreAtFullEqualsPaperScore) {
  EXPECT_DOUBLE_EQ(AnchoredScore(0.8, 0.8, 55.9), 55.9);
}

TEST(QualityTest, AnchoredScoreScalesRelatively) {
  EXPECT_NEAR(AnchoredScore(0.4, 0.8, 50.0), 25.0, 1e-9);
  // Better-than-full fidelity can exceed the anchor (sparse beats full).
  EXPECT_NEAR(AnchoredScore(0.9, 0.8, 50.0), 56.25, 1e-9);
}

TEST(QualityTest, AnchoredScoreCapsAtBoostAndHundred) {
  EXPECT_NEAR(AnchoredScore(10.0, 1.0, 40.0, 2.0), 80.0, 1e-9);  // Boost cap.
  EXPECT_NEAR(AnchoredScore(1.0, 0.5, 90.0), 100.0, 1e-9);        // Score cap.
}

TEST(QualityTest, AnchoredScoreZeroFullFidelity) {
  EXPECT_EQ(AnchoredScore(0.5, 0.0, 50.0), 0.0);
}

TEST(QualityTest, MeanAccumulator) {
  MeanAccumulator acc;
  EXPECT_EQ(acc.Mean(), 0.0);
  acc.Add(1.0);
  acc.Add(2.0);
  acc.Add(3.0);
  EXPECT_DOUBLE_EQ(acc.Mean(), 2.0);
  EXPECT_EQ(acc.count(), 3u);
}

}  // namespace
}  // namespace alaya
