#include "src/index/roargraph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

using testutil::BruteTopK;
using testutil::MakeTrainingQueries;
using testutil::PlantedMips;

TEST(RoarGraphTest, BuildsAndIsFullyReachable) {
  PlantedMips data(2000, 32, 50, 1);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 400, 2);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  EXPECT_TRUE(graph.built());
  EXPECT_DOUBLE_EQ(graph.ReachableFraction(), 1.0);
  EXPECT_EQ(graph.size(), 2000u);
  EXPECT_GT(graph.MemoryBytes(), 0u);
  EXPECT_EQ(graph.index_class(), IndexClass::kFine);
}

TEST(RoarGraphTest, DegreeBounded) {
  PlantedMips data(1000, 16, 30, 3);
  RoarGraphOptions opts;
  opts.max_degree = 12;
  RoarGraph graph(data.keys.View(), opts);
  VectorSet training = MakeTrainingQueries(data, 300, 4);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  for (uint32_t u = 0; u < graph.graph().size(); ++u) {
    EXPECT_LE(graph.graph().degree(u), 12u);
  }
}

TEST(RoarGraphTest, TopKRecallOnPlantedData) {
  PlantedMips data(4000, 32, 100, 5);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 800, 6);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());

  SearchResult res;
  TopKParams params{50, 128};
  ASSERT_TRUE(graph.SearchTopK(data.query.data(), params, &res).ok());
  ASSERT_EQ(res.hits.size(), 50u);
  auto exact = BruteTopK(data.keys.View(), data.query.data(), 50);
  std::vector<bool> got(4000, false);
  for (const auto& h : res.hits) got[h.id] = true;
  size_t inter = 0;
  for (const auto& e : exact) {
    if (got[e.id]) ++inter;
  }
  EXPECT_GE(inter, 45u);  // >= 90% recall@50.
}

TEST(RoarGraphTest, SearchBeforeBuildFails) {
  PlantedMips data(100, 16, 10, 7);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  SearchResult res;
  EXPECT_EQ(graph.SearchTopK(data.query.data(), TopKParams{5, 0}, &res).code(),
            StatusCode::kFailedPrecondition);
  DiprParams dp;
  EXPECT_EQ(graph.SearchDipr(data.query.data(), dp, &res).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RoarGraphTest, DimensionMismatchRejected) {
  PlantedMips data(100, 16, 10, 9);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet wrong(8);
  std::vector<float> v(8, 1.f);
  wrong.Append(v.data());
  EXPECT_TRUE(graph.BuildFromQueries(wrong.View()).IsInvalidArgument());
}

TEST(RoarGraphTest, EmptyKeysRejected) {
  VectorSet empty(16);
  RoarGraph graph(empty.View(), RoarGraphOptions{});
  VectorSet training(16);
  std::vector<float> v(16, 1.f);
  training.Append(v.data());
  EXPECT_TRUE(graph.BuildFromQueries(training.View()).IsInvalidArgument());
}

TEST(RoarGraphTest, EntryPointIsMaxNormKey) {
  VectorSet keys(8);
  Rng rng(10);
  std::vector<float> v(8);
  for (int i = 0; i < 50; ++i) {
    rng.FillGaussian(v.data(), 8);
    NormalizeInPlace(v.data(), 8);
    keys.Append(v.data());
  }
  std::vector<float> big(8, 3.f);  // Norm ~8.5, clearly the max.
  keys.Append(big.data());
  RoarGraph graph(keys.View(), RoarGraphOptions{});
  VectorSet training(8);
  for (int i = 0; i < 20; ++i) {
    rng.FillGaussian(v.data(), 8);
    training.Append(v.data());
  }
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  EXPECT_EQ(graph.EntryPoint(nullptr), 50u);
}

TEST(RoarGraphTest, FilteredTopKRespectsPredicate) {
  PlantedMips data(1000, 16, 60, 11);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 300, 12);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  IdFilter filter;
  filter.prefix_len = 500;
  SearchResult res;
  ASSERT_TRUE(graph
                  .SearchTopKFiltered(data.query.data(), TopKParams{20, 64}, filter,
                                      &res)
                  .ok());
  for (const auto& h : res.hits) EXPECT_LT(h.id, 500u);
}

TEST(RoarGraphTest, SequentialBuildMatchesParallelStructureQuality) {
  PlantedMips data(1500, 16, 60, 13);
  VectorSet training = MakeTrainingQueries(data, 400, 14);

  RoarGraphOptions seq_opts;
  seq_opts.sequential = true;
  RoarGraph seq(data.keys.View(), seq_opts);
  ASSERT_TRUE(seq.BuildFromQueries(training.View()).ok());

  RoarGraph par(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(par.BuildFromQueries(training.View()).ok());

  // Both graphs should recall the planted set under DIPRS.
  DiprParams params;
  params.beta = 11.f;
  SearchResult a, b;
  ASSERT_TRUE(seq.SearchDipr(data.query.data(), params, &a).ok());
  ASSERT_TRUE(par.SearchDipr(data.query.data(), params, &b).ok());
  EXPECT_GE(data.Recall(a.hits), 0.8);
  EXPECT_GE(data.Recall(b.hits), 0.8);
}

// --- ExtendFromBase: the index-sharing path DB.Store takes when a session
// --- extends a stored context (prefix graphs adopted, suffix inserted).

/// Asserts two graphs are node-for-node identical (adjacency and entry).
void ExpectGraphsIdentical(const RoarGraph& a, const RoarGraph& b) {
  ASSERT_EQ(a.graph().size(), b.graph().size());
  for (uint32_t u = 0; u < a.graph().size(); ++u) {
    auto na = a.graph().Neighbors(u);
    auto nb = b.graph().Neighbors(u);
    ASSERT_EQ(na.size(), nb.size()) << "node " << u;
    for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]) << "node " << u;
  }
  EXPECT_EQ(a.EntryPoint(nullptr), b.EntryPoint(nullptr));
}

TEST(RoarGraphTest, ExtendWithEmptySuffixIsBitIdenticalToBase) {
  PlantedMips data(800, 16, 40, 21);
  RoarGraph base(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 200, 22);
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());

  RoarGraph extended(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(extended.ExtendFromBase(base, 800).ok());
  EXPECT_TRUE(extended.built());
  ExpectGraphsIdentical(base, extended);
}

TEST(RoarGraphTest, ExtendIsDeterministic) {
  PlantedMips data(1200, 16, 60, 23);
  VectorSet training = MakeTrainingQueries(data, 300, 24);
  VectorSetView prefix_keys{data.keys.View().data, 900, 16};
  RoarGraph base(prefix_keys, RoarGraphOptions{});
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());

  RoarGraph a(data.keys.View(), RoarGraphOptions{});
  RoarGraph b(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(a.ExtendFromBase(base, 900).ok());
  ASSERT_TRUE(b.ExtendFromBase(base, 900).ok());
  ExpectGraphsIdentical(a, b);
}

TEST(RoarGraphTest, ExtendInsertsSuffixAndStaysFullyReachable) {
  constexpr size_t kPrefix = 1000, kTotal = 1400;
  PlantedMips data(kTotal, 16, 80, 25);
  VectorSet training = MakeTrainingQueries(data, 300, 26);
  VectorSetView prefix_keys{data.keys.View().data, kPrefix, 16};
  RoarGraph base(prefix_keys, RoarGraphOptions{});
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());

  RoarGraph extended(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(extended.ExtendFromBase(base, kPrefix).ok());
  EXPECT_EQ(extended.size(), kTotal);
  // Every node — adopted prefix and inserted suffix alike — is reachable.
  EXPECT_DOUBLE_EQ(extended.ReachableFraction(), 1.0);
  // Suffix nodes got real out-edges from insertion, not just repair edges.
  size_t suffix_edges = 0;
  for (uint32_t u = kPrefix; u < kTotal; ++u) {
    suffix_edges += extended.graph().degree(u);
  }
  EXPECT_GT(suffix_edges, (kTotal - kPrefix));  // > 1 edge/node on average.
}

TEST(RoarGraphTest, ExtendedSearchMatchesScratchOnSharedPrefix) {
  // The shared-prefix guarantee: retrieval over an extended graph finds the
  // planted critical set (which lives in the prefix by construction) just as
  // a from-scratch build over the full key set does.
  constexpr size_t kPrefix = 1500, kTotal = 1900;
  PlantedMips data(kTotal, 16, 80, 27);
  // Plant every critical id inside the prefix so prefix retrieval is the test.
  PlantedMips prefix_data(kPrefix, 16, 80, 27);
  VectorSet training = MakeTrainingQueries(prefix_data, 400, 28);

  RoarGraph base(prefix_data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());

  // New key set = prefix keys + background suffix (reuse data's tail rows).
  VectorSet full(16);
  full.AppendBatch(prefix_data.keys.View().data, kPrefix);
  full.AppendBatch(data.keys.View().Vec(kPrefix), kTotal - kPrefix);

  RoarGraph extended(full.View(), RoarGraphOptions{});
  ASSERT_TRUE(extended.ExtendFromBase(base, kPrefix).ok());
  RoarGraph scratch(full.View(), RoarGraphOptions{});
  ASSERT_TRUE(scratch.BuildFromQueries(training.View()).ok());

  // Recall of the prefix-planted critical set. Hits may carry suffix ids
  // (>= kPrefix, background by construction); only prefix ids can score.
  auto prefix_recall = [&](const SearchResult& res) {
    std::vector<bool> found(kPrefix, false);
    for (const auto& h : res.hits) {
      if (h.id < kPrefix) found[h.id] = true;
    }
    size_t hit = 0;
    for (uint32_t id : prefix_data.critical) hit += found[id] ? 1 : 0;
    return static_cast<double>(hit) /
           static_cast<double>(prefix_data.critical.size());
  };

  DiprParams params;
  params.beta = 11.f;
  SearchResult ext_res, scr_res, base_res;
  ASSERT_TRUE(extended.SearchDipr(prefix_data.query.data(), params, &ext_res).ok());
  ASSERT_TRUE(scratch.SearchDipr(prefix_data.query.data(), params, &scr_res).ok());
  ASSERT_TRUE(base.SearchDipr(prefix_data.query.data(), params, &base_res).ok());
  const double ext_recall = prefix_recall(ext_res);
  const double scr_recall = prefix_recall(scr_res);
  EXPECT_GE(ext_recall, 0.8);
  EXPECT_GE(ext_recall, scr_recall - 0.1);  // No quality cliff vs rebuild.
  EXPECT_GE(ext_recall, prefix_recall(base_res) - 0.05);
}

TEST(RoarGraphTest, ExtendValidatesBase) {
  PlantedMips data(200, 16, 10, 29);
  VectorSet training = MakeTrainingQueries(data, 60, 30);
  VectorSetView prefix_keys{data.keys.View().data, 100, 16};

  RoarGraph unbuilt(prefix_keys, RoarGraphOptions{});
  RoarGraph target(data.keys.View(), RoarGraphOptions{});
  EXPECT_EQ(target.ExtendFromBase(unbuilt, 100).code(),
            StatusCode::kFailedPrecondition);

  RoarGraph base(prefix_keys, RoarGraphOptions{});
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());
  // base.size() must cover base_count (a LARGER base is the partial-prefix
  // case, tested below; a smaller one cannot seed the prefix).
  EXPECT_TRUE(target.ExtendFromBase(base, 150).IsInvalidArgument());
  EXPECT_TRUE(target.ExtendFromBase(base, 0).IsInvalidArgument());
  EXPECT_TRUE(
      RoarGraph(prefix_keys, RoarGraphOptions{}).ExtendFromBase(base, 101).IsInvalidArgument());
}

TEST(RoarGraphTest, ExtendFromPartialPrefixDropsOutOfPrefixEdges) {
  // Partial reuse: the base graph covers MORE keys than the shared prefix.
  // Extension must adopt only the in-prefix adjacency — never an edge to a
  // base node that is not one of our tokens — and still insert the suffix.
  constexpr size_t kBaseTotal = 900, kShared = 600, kTotal = 1000;
  PlantedMips data(kBaseTotal, 16, 40, 31);
  VectorSet training = MakeTrainingQueries(data, 250, 32);
  RoarGraph base(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(base.BuildFromQueries(training.View()).ok());

  // New key set: the shared prefix plus a fresh suffix (planted elsewhere).
  PlantedMips other(kTotal, 16, 40, 33);
  VectorSet full(16);
  full.AppendBatch(data.keys.View().data, kShared);
  full.AppendBatch(other.keys.View().Vec(kShared), kTotal - kShared);

  RoarGraph extended(full.View(), RoarGraphOptions{});
  ASSERT_TRUE(extended.ExtendFromBase(base, kShared).ok());
  EXPECT_TRUE(extended.built());

  // Node counts: the graph covers exactly the new key set, no base suffix
  // nodes leaked in.
  ASSERT_EQ(extended.size(), kTotal);
  ASSERT_EQ(extended.graph().size(), kTotal);

  // Every adopted prefix edge is a subset of the base's (minus out-of-prefix
  // targets) plus whatever reverse/repair edges insertion added — but no edge
  // anywhere may target a node id outside [0, kTotal).
  size_t dropped_witness = 0;
  for (uint32_t u = 0; u < kShared; ++u) {
    for (uint32_t v : base.graph().Neighbors(u)) {
      if (v >= kShared) ++dropped_witness;  // Base had out-of-prefix edges.
    }
  }
  EXPECT_GT(dropped_witness, 0u);  // The test exercises actual truncation.
  for (uint32_t u = 0; u < kTotal; ++u) {
    for (uint32_t v : extended.graph().Neighbors(u)) {
      ASSERT_LT(v, kTotal) << "edge to non-existent node from " << u;
    }
  }
  // Truncation may orphan prefix nodes; the connectivity pass must repair.
  EXPECT_DOUBLE_EQ(extended.ReachableFraction(), 1.0);
  // The entry is a live node of the new graph.
  EXPECT_LT(extended.EntryPoint(nullptr), kTotal);
}

}  // namespace
}  // namespace alaya
