#include "src/index/roargraph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

using testutil::BruteTopK;
using testutil::MakeTrainingQueries;
using testutil::PlantedMips;

TEST(RoarGraphTest, BuildsAndIsFullyReachable) {
  PlantedMips data(2000, 32, 50, 1);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 400, 2);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  EXPECT_TRUE(graph.built());
  EXPECT_DOUBLE_EQ(graph.ReachableFraction(), 1.0);
  EXPECT_EQ(graph.size(), 2000u);
  EXPECT_GT(graph.MemoryBytes(), 0u);
  EXPECT_EQ(graph.index_class(), IndexClass::kFine);
}

TEST(RoarGraphTest, DegreeBounded) {
  PlantedMips data(1000, 16, 30, 3);
  RoarGraphOptions opts;
  opts.max_degree = 12;
  RoarGraph graph(data.keys.View(), opts);
  VectorSet training = MakeTrainingQueries(data, 300, 4);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  for (uint32_t u = 0; u < graph.graph().size(); ++u) {
    EXPECT_LE(graph.graph().degree(u), 12u);
  }
}

TEST(RoarGraphTest, TopKRecallOnPlantedData) {
  PlantedMips data(4000, 32, 100, 5);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 800, 6);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());

  SearchResult res;
  TopKParams params{50, 128};
  ASSERT_TRUE(graph.SearchTopK(data.query.data(), params, &res).ok());
  ASSERT_EQ(res.hits.size(), 50u);
  auto exact = BruteTopK(data.keys.View(), data.query.data(), 50);
  std::vector<bool> got(4000, false);
  for (const auto& h : res.hits) got[h.id] = true;
  size_t inter = 0;
  for (const auto& e : exact) {
    if (got[e.id]) ++inter;
  }
  EXPECT_GE(inter, 45u);  // >= 90% recall@50.
}

TEST(RoarGraphTest, SearchBeforeBuildFails) {
  PlantedMips data(100, 16, 10, 7);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  SearchResult res;
  EXPECT_EQ(graph.SearchTopK(data.query.data(), TopKParams{5, 0}, &res).code(),
            StatusCode::kFailedPrecondition);
  DiprParams dp;
  EXPECT_EQ(graph.SearchDipr(data.query.data(), dp, &res).code(),
            StatusCode::kFailedPrecondition);
}

TEST(RoarGraphTest, DimensionMismatchRejected) {
  PlantedMips data(100, 16, 10, 9);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet wrong(8);
  std::vector<float> v(8, 1.f);
  wrong.Append(v.data());
  EXPECT_TRUE(graph.BuildFromQueries(wrong.View()).IsInvalidArgument());
}

TEST(RoarGraphTest, EmptyKeysRejected) {
  VectorSet empty(16);
  RoarGraph graph(empty.View(), RoarGraphOptions{});
  VectorSet training(16);
  std::vector<float> v(16, 1.f);
  training.Append(v.data());
  EXPECT_TRUE(graph.BuildFromQueries(training.View()).IsInvalidArgument());
}

TEST(RoarGraphTest, EntryPointIsMaxNormKey) {
  VectorSet keys(8);
  Rng rng(10);
  std::vector<float> v(8);
  for (int i = 0; i < 50; ++i) {
    rng.FillGaussian(v.data(), 8);
    NormalizeInPlace(v.data(), 8);
    keys.Append(v.data());
  }
  std::vector<float> big(8, 3.f);  // Norm ~8.5, clearly the max.
  keys.Append(big.data());
  RoarGraph graph(keys.View(), RoarGraphOptions{});
  VectorSet training(8);
  for (int i = 0; i < 20; ++i) {
    rng.FillGaussian(v.data(), 8);
    training.Append(v.data());
  }
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  EXPECT_EQ(graph.EntryPoint(nullptr), 50u);
}

TEST(RoarGraphTest, FilteredTopKRespectsPredicate) {
  PlantedMips data(1000, 16, 60, 11);
  RoarGraph graph(data.keys.View(), RoarGraphOptions{});
  VectorSet training = MakeTrainingQueries(data, 300, 12);
  ASSERT_TRUE(graph.BuildFromQueries(training.View()).ok());
  IdFilter filter;
  filter.prefix_len = 500;
  SearchResult res;
  ASSERT_TRUE(graph
                  .SearchTopKFiltered(data.query.data(), TopKParams{20, 64}, filter,
                                      &res)
                  .ok());
  for (const auto& h : res.hits) EXPECT_LT(h.id, 500u);
}

TEST(RoarGraphTest, SequentialBuildMatchesParallelStructureQuality) {
  PlantedMips data(1500, 16, 60, 13);
  VectorSet training = MakeTrainingQueries(data, 400, 14);

  RoarGraphOptions seq_opts;
  seq_opts.sequential = true;
  RoarGraph seq(data.keys.View(), seq_opts);
  ASSERT_TRUE(seq.BuildFromQueries(training.View()).ok());

  RoarGraph par(data.keys.View(), RoarGraphOptions{});
  ASSERT_TRUE(par.BuildFromQueries(training.View()).ok());

  // Both graphs should recall the planted set under DIPRS.
  DiprParams params;
  params.beta = 11.f;
  SearchResult a, b;
  ASSERT_TRUE(seq.SearchDipr(data.query.data(), params, &a).ok());
  ASSERT_TRUE(par.SearchDipr(data.query.data(), params, &b).ok());
  EXPECT_GE(data.Recall(a.hits), 0.8);
  EXPECT_GE(data.Recall(b.hits), 0.8);
}

}  // namespace
}  // namespace alaya
