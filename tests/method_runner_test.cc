#include "src/baselines/method_runner.h"

#include <gtest/gtest.h>

#include "src/baselines/lmcache.h"
#include "src/llm/inference_sim.h"

namespace alaya {
namespace {

struct RunnerFixture {
  SyntheticContextOptions opts;
  SyntheticContext ctx;
  SimEnvironment env;

  RunnerFixture() : opts(MakeOptions()), ctx(opts) {
    Status st = ctx.Generate();
    EXPECT_TRUE(st.ok()) << st.ToString();
  }

  static SyntheticContextOptions MakeOptions() {
    SyntheticContextOptions o;
    o.model = ModelConfig{2, 4, 2, 64, 2};
    o.spec = FindTask(InfinityBenchSuite(0.03), "En.MC");
    return o;
  }

  float DiprBeta() const {
    return static_cast<float>(SuggestedDiprBeta(opts.spec, 64));
  }
};

TEST(MethodRunnerTest, AllMethodsProduceOutput) {
  RunnerFixture fx;
  std::vector<MethodSpec> specs = {
      MethodSpec::Full(), MethodSpec::Streaming(1024), MethodSpec::InfLlm(1024),
      MethodSpec::TopK(64), MethodSpec::Diprs(fx.DiprBeta())};
  std::vector<float> q(64), out(64);
  fx.ctx.MakeDecodeQuery(0, 1, 0, q.data());
  for (auto& spec : specs) {
    MethodRunner runner(fx.opts.model, spec);
    ASSERT_TRUE(runner.Prepare(fx.ctx, &fx.env).ok()) << spec.label;
    MethodHeadStats stats;
    ASSERT_TRUE(runner.AttendHead(1, 0, q.data(), out.data(), &stats).ok())
        << spec.label;
    EXPECT_GT(stats.attended, 0u) << spec.label;
    EXPECT_GT(Norm(out.data(), 64), 0.f) << spec.label;
  }
}

TEST(MethodRunnerTest, AttendBeforePrepareFails) {
  RunnerFixture fx;
  MethodRunner runner(fx.opts.model, MethodSpec::Full());
  std::vector<float> q(64, 1.f), out(64);
  EXPECT_EQ(runner.AttendHead(0, 0, q.data(), out.data(), nullptr).code(),
            StatusCode::kFailedPrecondition);
}

TEST(MethodRunnerTest, GpuBytesOrdering) {
  RunnerFixture fx;
  auto bytes = [&](const MethodSpec& spec) {
    MethodRunner runner(fx.opts.model, spec);
    EXPECT_TRUE(runner.Prepare(fx.ctx, &fx.env).ok());
    return runner.GpuBytes();
  };
  const uint64_t full = bytes(MethodSpec::Full());
  const uint64_t streaming = bytes(MethodSpec::Streaming(512));
  // Small recent window so InfLLM's device cache stays well below the tiny
  // test context (at paper scale the default 4K window is ~2% of context).
  const uint64_t infllm = bytes(MethodSpec::InfLlm(1024, /*recent=*/256));
  const uint64_t diprs = bytes(MethodSpec::Diprs(fx.DiprBeta()));
  // Full attention keeps everything on device; fine-grained methods only the
  // window; InfLLM sits in between (Fig. 9 / Table 1).
  EXPECT_GT(full, infllm);
  EXPECT_GT(infllm, diprs);
  EXPECT_GE(streaming, diprs / 2);  // Streaming ~ window-sized as well.
  EXPECT_LT(diprs, full / 4);
}

TEST(MethodRunnerTest, DiprsRetrievesDynamicCounts) {
  RunnerFixture fx;
  MethodRunner runner(fx.opts.model, MethodSpec::Diprs(fx.DiprBeta()));
  ASSERT_TRUE(runner.Prepare(fx.ctx, &fx.env).ok());
  std::vector<float> q(64), out(64);
  std::vector<size_t> counts;
  for (uint32_t h = 0; h < 4; ++h) {
    fx.ctx.MakeDecodeQuery(0, 1, h, q.data());
    MethodHeadStats stats;
    ASSERT_TRUE(runner.AttendHead(1, h, q.data(), out.data(), &stats).ok());
    counts.push_back(stats.retrieved);
  }
  // Heads have different planted critical sizes; retrieved counts vary.
  bool any_different = false;
  for (size_t i = 1; i < counts.size(); ++i) {
    if (counts[i] != counts[0]) any_different = true;
  }
  EXPECT_TRUE(any_different);
}

TEST(MethodRunnerTest, UsedIdsCoverWindowAndRetrieved) {
  RunnerFixture fx;
  MethodRunner runner(fx.opts.model, MethodSpec::TopK(32));
  ASSERT_TRUE(runner.Prepare(fx.ctx, &fx.env).ok());
  std::vector<float> q(64), out(64);
  fx.ctx.MakeDecodeQuery(0, 0, 0, q.data());
  MethodHeadStats stats;
  std::vector<uint32_t> used;
  ASSERT_TRUE(runner.AttendHead(0, 0, q.data(), out.data(), &stats, &used).ok());
  EXPECT_EQ(used.size(), stats.attended);
  EXPECT_GT(used.size(), 32u);  // Window + retrieved.
}

TEST(InferenceSimTest, EvaluateProducesConsistentStats) {
  RunnerFixture fx;
  MethodRunner runner(fx.opts.model, MethodSpec::Diprs(fx.DiprBeta()));
  ASSERT_TRUE(runner.Prepare(fx.ctx, &fx.env).ok());
  EvalOptions eopts = MakeScaledEvalOptions(fx.opts.model);
  eopts.decode_steps = 2;
  auto eval = EvaluateMethod(fx.ctx, &runner, eopts);
  ASSERT_TRUE(eval.ok());
  EXPECT_GT(eval.value().fidelity, 0.5);
  EXPECT_LE(eval.value().fidelity, 1.0);
  EXPECT_GT(eval.value().tpot_seconds, 0.0);
  EXPECT_GT(eval.value().mean_attended, 0.0);
}

TEST(InferenceSimTest, ScaledOptionsMatchGeometryRatio) {
  ModelConfig bench{4, 8, 2, 128, 2};
  EvalOptions opts = MakeScaledEvalOptions(bench);
  // (32*32)/(4*8) = 32.
  EXPECT_NEAR(opts.layer_head_scale, 32.0, 1e-9);
  // KV bytes/token ratio: (2*8*128*2*32)/(2*2*128*2*4) = 32.
  EXPECT_NEAR(opts.gpu_ctx_scale, 32.0, 1e-9);
  EXPECT_NEAR(opts.gpu_fixed_scale, 32.0, 1e-9);
}

TEST(InferenceSimTest, AnchorScoresUsesFullRow) {
  std::vector<MethodEval> evals(3);
  evals[0].label = "Full Attention";
  evals[0].fidelity = 0.8;
  evals[1].label = "DIPRS";
  evals[1].fidelity = 0.9;
  evals[2].label = "StreamingLLM";
  evals[2].fidelity = 0.4;
  AnchorScores(&evals, 50.0);
  EXPECT_DOUBLE_EQ(evals[0].score, 50.0);
  EXPECT_NEAR(evals[1].score, 56.25, 1e-9);
  EXPECT_NEAR(evals[2].score, 25.0, 1e-9);
}

TEST(LmCacheTest, LoadCostsScaleWithContextLength) {
  SimEnvironment env;
  LmCacheStore store(LmCacheOptions{}, &env);
  ModelConfig m = ModelConfig::Tiny();
  for (uint64_t id = 1; id <= 2; ++id) {
    KvCache kv(m);
    std::vector<float> buf(m.num_kv_heads * m.head_dim, 1.f);
    // Large enough that per-call launch overheads are negligible.
    const size_t tokens = id * 20000;
    for (uint32_t layer = 0; layer < m.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) kv.AppendToken(layer, buf.data(), buf.data());
    }
    ASSERT_TRUE(store.StoreContext(id, kv).ok());
  }
  auto l1 = store.Load(1);
  auto l2 = store.Load(2);
  ASSERT_TRUE(l1.ok());
  ASSERT_TRUE(l2.ok());
  EXPECT_NEAR(l2.value().total_seconds / l1.value().total_seconds, 2.0, 0.2);
  EXPECT_GT(l1.value().decompress_seconds, 0.0);
  EXPECT_GT(l1.value().transfer_seconds, 0.0);
  EXPECT_FALSE(store.Load(99).ok());
  EXPECT_TRUE(store.Contains(1));
  EXPECT_GT(store.StoredBytes(), 0u);
  EXPECT_GT(store.DecodeStepSeconds(2), store.DecodeStepSeconds(1));
}

TEST(LmCacheTest, HostMemorySymmetricAcrossStoreRemoveCycles) {
  SimEnvironment env;
  const uint64_t baseline = env.host_memory().current();
  {
    LmCacheStore store(LmCacheOptions{}, &env);
    ModelConfig m = ModelConfig::Tiny();
    for (int cycle = 0; cycle < 3; ++cycle) {
      ASSERT_TRUE(store.StoreContextBytes(1, 1000, m.KvBytesPerToken()).ok());
      EXPECT_GT(env.host_memory().current(), baseline);
      EXPECT_TRUE(store.RemoveContext(1));
      EXPECT_EQ(env.host_memory().current(), baseline) << "cycle " << cycle;
    }
    EXPECT_FALSE(store.RemoveContext(1));  // Already gone.

    // Re-storing an id swaps the accounting instead of leaking the old entry.
    ASSERT_TRUE(store.StoreContextBytes(2, 1000, m.KvBytesPerToken()).ok());
    ASSERT_TRUE(store.StoreContextBytes(2, 500, m.KvBytesPerToken()).ok());
    EXPECT_EQ(env.host_memory().current() - baseline, store.StoredBytes());
    // Entries alive at destruction are returned by the destructor.
  }
  EXPECT_EQ(env.host_memory().current(), baseline);
}

}  // namespace
}  // namespace alaya
