#include "src/index/index_builder.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

struct LayerFixture {
  std::vector<VectorSet> keys;     // Per KV head.
  std::vector<VectorSet> queries;  // Per query head.
  std::vector<VectorSetView> key_views;
  std::vector<VectorSetView> query_views;

  LayerFixture(uint32_t h_kv, uint32_t group, size_t n, size_t d, uint64_t seed) {
    Rng rng(seed);
    std::vector<float> v(d);
    for (uint32_t h = 0; h < h_kv; ++h) {
      keys.emplace_back(d);
      for (size_t i = 0; i < n; ++i) {
        rng.FillGaussian(v.data(), d);
        keys.back().Append(v.data());
      }
    }
    for (uint32_t g = 0; g < h_kv * group; ++g) {
      queries.emplace_back(d);
      for (size_t i = 0; i < n / 2; ++i) {
        rng.FillGaussian(v.data(), d);
        queries.back().Append(v.data());
      }
    }
    for (auto& k : keys) key_views.push_back(k.View());
    for (auto& q : queries) query_views.push_back(q.View());
  }
};

TEST(IndexBuilderTest, SharedBuildsOneIndexPerKvHead) {
  LayerFixture fx(2, 4, 600, 16, 1);
  IndexBuildOptions opts;
  opts.share_gqa_group = true;
  std::vector<std::unique_ptr<RoarGraph>> out;
  IndexBuildStats stats;
  ASSERT_TRUE(BuildLayerIndices(fx.key_views, fx.query_views, 4, opts, &out, &stats).ok());
  EXPECT_EQ(out.size(), 2u);
  EXPECT_EQ(stats.num_indices, 2u);
  for (auto& g : out) {
    EXPECT_TRUE(g->built());
    EXPECT_EQ(g->size(), 600u);
  }
}

TEST(IndexBuilderTest, UnsharedBuildsOneIndexPerQueryHead) {
  LayerFixture fx(2, 4, 400, 16, 2);
  IndexBuildOptions opts;
  opts.share_gqa_group = false;
  std::vector<std::unique_ptr<RoarGraph>> out;
  IndexBuildStats stats;
  ASSERT_TRUE(BuildLayerIndices(fx.key_views, fx.query_views, 4, opts, &out, &stats).ok());
  EXPECT_EQ(out.size(), 8u);
}

TEST(IndexBuilderTest, SharingReducesIndexBytes) {
  LayerFixture fx(2, 4, 500, 16, 3);
  std::vector<std::unique_ptr<RoarGraph>> shared, unshared;
  IndexBuildStats s1, s2;
  IndexBuildOptions opts;
  opts.share_gqa_group = true;
  ASSERT_TRUE(BuildLayerIndices(fx.key_views, fx.query_views, 4, opts, &shared, &s1).ok());
  opts.share_gqa_group = false;
  ASSERT_TRUE(
      BuildLayerIndices(fx.key_views, fx.query_views, 4, opts, &unshared, &s2).ok());
  // 4x fewer indices -> ~4x less index memory (Fig. 11b).
  EXPECT_LT(s1.index_bytes * 3, s2.index_bytes);
}

TEST(IndexBuilderTest, GpuPathReportsPipelinedTime) {
  LayerFixture fx(2, 2, 400, 16, 4);
  IndexBuildOptions opts;
  opts.use_sim_gpu_knn = true;
  std::vector<std::unique_ptr<RoarGraph>> out;
  IndexBuildStats stats;
  ASSERT_TRUE(BuildLayerIndices(fx.key_views, fx.query_views, 2, opts, &out, &stats).ok());
  EXPECT_GT(stats.modeled_gpu_seconds, 0.0);
  EXPECT_GT(stats.modeled_transfer_seconds, 0.0);
  EXPECT_GT(stats.reported_seconds, 0.0);
  EXPECT_GT(stats.training_queries, 0u);
}

TEST(IndexBuilderTest, CpuBaselineSlowerThanReportedGpu) {
  LayerFixture fx(2, 2, 1500, 32, 5);
  std::vector<std::unique_ptr<RoarGraph>> out;
  IndexBuildStats gpu_stats, cpu_stats;
  IndexBuildOptions gpu_opts;
  gpu_opts.use_sim_gpu_knn = true;
  ASSERT_TRUE(
      BuildLayerIndices(fx.key_views, fx.query_views, 2, gpu_opts, &out, &gpu_stats).ok());
  IndexBuildOptions cpu_opts;
  cpu_opts.use_sim_gpu_knn = false;
  cpu_opts.sequential_cpu_baseline = true;
  cpu_opts.share_gqa_group = false;
  ASSERT_TRUE(
      BuildLayerIndices(fx.key_views, fx.query_views, 2, cpu_opts, &out, &cpu_stats).ok());
  EXPECT_GT(cpu_stats.reported_seconds, gpu_stats.modeled_gpu_seconds);
}

TEST(IndexBuilderTest, MismatchedHeadCountsRejected) {
  LayerFixture fx(2, 4, 100, 8, 6);
  IndexBuildOptions opts;
  std::vector<std::unique_ptr<RoarGraph>> out;
  // Claim group size 2 while 8 query heads / 2 kv heads = 4.
  EXPECT_TRUE(BuildLayerIndices(fx.key_views, fx.query_views, 2, opts, &out, nullptr)
                  .IsInvalidArgument());
  EXPECT_TRUE(
      BuildLayerIndices(fx.key_views, fx.query_views, 0, opts, &out, nullptr)
          .IsInvalidArgument());
}

TEST(IndexBuilderTest, SampleQueriesRespectsCount) {
  Rng rng(7);
  VectorSet queries(8);
  std::vector<float> v(8);
  for (int i = 0; i < 100; ++i) {
    rng.FillGaussian(v.data(), 8);
    queries.Append(v.data());
  }
  Rng sample_rng(8);
  VectorSet s = SampleQueries(queries.View(), 30, &sample_rng);
  EXPECT_EQ(s.size(), 30u);
  VectorSet all = SampleQueries(queries.View(), 1000, &sample_rng);
  EXPECT_EQ(all.size(), 100u);  // Capped at available.
}

}  // namespace
}  // namespace alaya
