#include "src/query/diprs.h"

#include <gtest/gtest.h>

#include "src/index/flat_index.h"
#include "src/index/roargraph.h"
#include "tests/test_util.h"

namespace alaya {
namespace {

using testutil::MakeTrainingQueries;
using testutil::PlantedMips;

struct DiprsFixture {
  PlantedMips data;
  RoarGraph graph;

  DiprsFixture(size_t n, size_t d, size_t n_crit, uint64_t seed)
      : data(n, d, n_crit, seed), graph(data.keys.View(), RoarGraphOptions{}) {
    VectorSet training = MakeTrainingQueries(data, 600, seed + 1);
    Status st = graph.BuildFromQueries(training.View());
    EXPECT_TRUE(st.ok()) << st.ToString();
  }
};

TEST(DiprsTest, RecallsPlantedCriticalSet) {
  DiprsFixture fx(4000, 32, 100, 11);
  DiprParams params;
  // Band is 25% of |q|=40 -> 10; small margin for jitter.
  params.beta = 11.f;
  params.l0 = 128;
  SearchResult res = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                 fx.graph.EntryPoint(fx.data.query.data()),
                                 fx.data.query.data(), params);
  EXPECT_GE(fx.data.Recall(res.hits), 0.9) << "hits=" << res.hits.size();
  EXPECT_GT(res.stats.hops, 0u);
  EXPECT_GT(res.stats.dist_comps, 0u);
}

TEST(DiprsTest, ReturnsSupersetNearFlatOracle) {
  // The graph search is approximate but should agree closely with the exact
  // flat-scan DIPR on planted data.
  DiprsFixture fx(3000, 32, 60, 13);
  DiprParams params;
  params.beta = 11.f;
  FlatIndex flat(fx.data.keys.View());
  SearchResult oracle;
  ASSERT_TRUE(flat.SearchDipr(fx.data.query.data(), params, &oracle).ok());
  SearchResult got = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                 fx.graph.EntryPoint(fx.data.query.data()),
                                 fx.data.query.data(), params);
  // At least 85% of the oracle's ids found.
  std::vector<bool> found(3000, false);
  for (const auto& h : got.hits) found[h.id] = true;
  size_t inter = 0;
  for (const auto& h : oracle.hits) {
    if (found[h.id]) ++inter;
  }
  EXPECT_GE(static_cast<double>(inter) / oracle.hits.size(), 0.85);
}

TEST(DiprsTest, DynamicSizeAdaptsToCriticalCount) {
  // Observation I reproduced in miniature: same beta, different planted
  // critical-set sizes -> different retrieved counts.
  DiprsFixture small(3000, 32, 20, 17);
  DiprsFixture large(3000, 32, 300, 19);
  DiprParams params;
  params.beta = 11.f;
  SearchResult rs = DiprsSearch(small.graph.graph(), small.data.keys.View(),
                                small.graph.EntryPoint(small.data.query.data()),
                                small.data.query.data(), params);
  SearchResult rl = DiprsSearch(large.graph.graph(), large.data.keys.View(),
                                large.graph.EntryPoint(large.data.query.data()),
                                large.data.query.data(), params);
  EXPECT_LT(rs.hits.size(), rl.hits.size());
  EXPECT_GT(rl.hits.size(), 150u);
}

TEST(DiprsTest, WindowHintPrunesExploration) {
  DiprsFixture fx(4000, 32, 80, 23);
  DiprParams params;
  params.beta = 11.f;
  SearchResult plain = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                   fx.graph.EntryPoint(fx.data.query.data()),
                                   fx.data.query.data(), params);
  DiprsHints hints;
  hints.prior_best_ip = fx.data.ip_max;  // As if the max were window-cached.
  SearchResult hinted = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                    fx.graph.EntryPoint(fx.data.query.data()),
                                    fx.data.query.data(), params, hints);
  EXPECT_LE(hinted.stats.appended, plain.stats.appended);
  EXPECT_GE(fx.data.Recall(hinted.hits), 0.85);
}

TEST(DiprsTest, MaxTokensCapsResult) {
  DiprsFixture fx(2000, 32, 200, 29);
  DiprParams params;
  params.beta = 11.f;
  params.max_tokens = 10;
  SearchResult res = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                 fx.graph.EntryPoint(fx.data.query.data()),
                                 fx.data.query.data(), params);
  EXPECT_LE(res.hits.size(), 10u);
}

TEST(DiprsTest, MaxExploredBoundsListGrowth) {
  DiprsFixture fx(2000, 32, 200, 31);
  DiprParams params;
  params.beta = 11.f;
  DiprsHints hints;
  hints.max_explored = 50;
  SearchResult res = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                 fx.graph.EntryPoint(fx.data.query.data()),
                                 fx.data.query.data(), params, hints);
  EXPECT_LE(res.stats.appended, 50u);
  EXPECT_LE(res.hits.size(), 50u);
}

TEST(DiprsTest, EmptyGraphReturnsNothing) {
  AdjacencyGraph g;
  VectorSetView empty;
  DiprParams params;
  SearchResult res = DiprsSearch(g, empty, 0, nullptr, params);
  EXPECT_TRUE(res.hits.empty());
}

TEST(DiprsFilteredTest, RespectsPredicate) {
  DiprsFixture fx(3000, 32, 120, 37);
  DiprParams params;
  params.beta = 11.f;
  params.l0 = 128;
  IdFilter filter;
  filter.prefix_len = 1500;
  SearchResult res = DiprsSearchFiltered(fx.graph.graph(), fx.data.keys.View(),
                                         fx.graph.EntryPoint(fx.data.query.data()),
                                         fx.data.query.data(), params, filter);
  for (const auto& h : res.hits) EXPECT_LT(h.id, 1500u);
  // Recall over the critical ids that pass the filter.
  size_t passing = 0, found = 0;
  std::vector<bool> got(3000, false);
  for (const auto& h : res.hits) got[h.id] = true;
  for (uint32_t id : fx.data.critical) {
    if (id < 1500) {
      ++passing;
      if (got[id]) ++found;
    }
  }
  ASSERT_GT(passing, 10u);
  EXPECT_GE(static_cast<double>(found) / passing, 0.7);
}

TEST(DiprsFilteredTest, DisabledFilterEqualsPlain) {
  DiprsFixture fx(1500, 32, 50, 41);
  DiprParams params;
  params.beta = 11.f;
  SearchResult plain = DiprsSearch(fx.graph.graph(), fx.data.keys.View(),
                                   fx.graph.EntryPoint(fx.data.query.data()),
                                   fx.data.query.data(), params);
  SearchResult filtered = DiprsSearchFiltered(
      fx.graph.graph(), fx.data.keys.View(),
      fx.graph.EntryPoint(fx.data.query.data()), fx.data.query.data(), params,
      IdFilter{});
  EXPECT_EQ(plain.hits.size(), filtered.hits.size());
}

TEST(DiprsFilteredTest, EntryFailingPredicateStillSearches) {
  // Force a filter so tight that most of the graph (including likely entry
  // points) fails it; BFS seeding must still find passing candidates.
  DiprsFixture fx(3000, 32, 100, 43);
  DiprParams params;
  params.beta = 1e9f;  // Everything within range; tests reachability only.
  IdFilter filter;
  filter.prefix_len = 64;
  SearchResult res = DiprsSearchFiltered(fx.graph.graph(), fx.data.keys.View(),
                                         fx.graph.EntryPoint(fx.data.query.data()),
                                         fx.data.query.data(), params, filter);
  EXPECT_GT(res.hits.size(), 0u);
  for (const auto& h : res.hits) EXPECT_LT(h.id, 64u);
}

/// Parameterized beta sweep: retrieved count grows monotonically with beta
/// (property of Definition 3 preserved by the approximate search).
class DiprsBetaSweep : public ::testing::TestWithParam<float> {};

TEST_P(DiprsBetaSweep, CountRoughlyMonotoneInBeta) {
  static DiprsFixture* fx = new DiprsFixture(3000, 32, 150, 53);
  DiprParams params;
  params.beta = GetParam();
  params.l0 = 128;
  SearchResult res = DiprsSearch(fx->graph.graph(), fx->data.keys.View(),
                                 fx->graph.EntryPoint(fx->data.query.data()),
                                 fx->data.query.data(), params);
  // With beta below the band floor we retrieve a subset; at the band we
  // retrieve ~all planted criticals; sanity: non-empty, bounded.
  EXPECT_GE(res.hits.size(), 1u);
  EXPECT_LE(res.hits.size(), 3000u);
  if (params.beta >= 11.f) {
    EXPECT_GE(fx->data.Recall(res.hits), 0.8);
  }
}

INSTANTIATE_TEST_SUITE_P(Betas, DiprsBetaSweep,
                         ::testing::Values(0.f, 2.f, 5.f, 8.f, 11.f, 14.f));

}  // namespace
}  // namespace alaya
