// Preemptive multi-tenant scheduling: priority classes, suspend/resume with
// zero recompute (the resumed decode is bit-identical to an uninterrupted
// one), the FifoPolicy golden (arrival order regardless of priority), and the
// suspended-state edge cases — cancel-while-suspended, deadline-expiry-while-
// suspended, suspension racing retirement. The storm test races caller
// threads against the preempting driver and runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <latch>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

struct PreemptFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  uint64_t context_id = 0;
  ThreadPool pool{4};

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  PreemptFixture() {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    options.materialize_pool = &pool;
    db = std::make_unique<AlayaDB>(options, &env);
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(1);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < context_tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    auto imported = db->Import(ContextTokens(), std::move(kv));
    EXPECT_TRUE(imported.ok()) << imported.status().ToString();
    context_id = imported.ValueOr(0);
  }

  std::vector<int32_t> ContextTokens() const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) t[i] = 100 + static_cast<int32_t>(i);
    return t;
  }

  /// A request whose prompt extends `suffix` tokens past the stored context
  /// (prefill work) and decodes `steps` tokens. Deterministic fill callbacks
  /// keyed by `seed`: any schedule — preempted or not — must produce
  /// identical outputs.
  ServingRequest MakeRequest(uint64_t seed, size_t steps, size_t suffix = 0) const {
    ServingRequest r;
    r.prompt = ContextTokens();
    for (size_t i = 0; i < suffix; ++i) {
      r.prompt.push_back(5000 + static_cast<int32_t>(seed * 100 + i));
    }
    r.max_new_tokens = steps;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    if (suffix > 0) {
      r.fill_prompt = [m, seed](size_t token, uint32_t layer, float* q, float* k,
                                float* v) {
        Rng rng(seed * 2000003ull + token * 137ull + layer);
        rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
        rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
        rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      };
    }
    return r;
  }
};

// The tentpole golden: a low-priority request preempted mid-decode by a
// high-priority one resumes with ZERO recompute and finishes bit-identical to
// an uninterrupted solo run — same outputs, and prefilled_tokens exactly the
// uncovered suffix length (nothing was prefilled twice).
TEST(ServingPreemptTest, PreemptedDecodeResumesBitIdenticalWithZeroRecompute) {
  constexpr size_t kSteps = 48;
  constexpr size_t kSuffix = 24;
  constexpr uint64_t kSeed = 7;

  // Solo golden: the same request, alone, never preempted.
  std::vector<float> golden;
  {
    PreemptFixture fx;
    ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
    ServingRequest req = fx.MakeRequest(kSeed, kSteps, kSuffix);
    req.record_outputs = true;
    auto h = engine.Submit(std::move(req));
    ASSERT_TRUE(h.ok());
    ASSERT_TRUE(engine.RunToCompletion().ok());
    const RequestResult* r = h.value().TryWait();
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    EXPECT_EQ(r->prefilled_tokens, kSuffix);
    golden = r->outputs;
    ASSERT_EQ(golden.size(),
              kSteps * static_cast<size_t>(fx.model.num_q_heads) * fx.model.head_dim);
  }

  // Contended: one slot; the low request is provably mid-decode (first-token
  // latch) when the high-priority one arrives and takes the slot from it.
  PreemptFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());

  std::latch first_token(1);
  ServingRequest low = fx.MakeRequest(kSeed, kSteps, kSuffix);
  low.record_outputs = true;
  low.priority = 0;
  low.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) first_token.count_down();
    // Pace the early steps so the high request lands mid-decode, well before
    // the low one finishes; the tail runs at full speed.
    if (step < kSteps / 2) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  };
  auto low_h = engine.Submit(std::move(low));
  ASSERT_TRUE(low_h.ok());
  first_token.wait();

  ServingRequest high = fx.MakeRequest(99, 4);
  high.priority = 1;
  auto high_h = engine.Submit(std::move(high));
  ASSERT_TRUE(high_h.ok());

  const RequestResult* hr = high_h.value().Wait();
  ASSERT_NE(hr, nullptr);
  EXPECT_TRUE(hr->status.ok()) << hr->status.ToString();
  EXPECT_EQ(hr->priority, 1);

  const RequestResult* lr = low_h.value().Wait();
  ASSERT_NE(lr, nullptr);
  ASSERT_TRUE(lr->status.ok()) << lr->status.ToString();
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());

  // The low request was actually suspended and resumed...
  EXPECT_GE(lr->preemptions, 1u);
  EXPECT_EQ(lr->resumes, lr->preemptions);
  // ...prefilled exactly its uncovered suffix once (zero recompute)...
  EXPECT_EQ(lr->prefilled_tokens, kSuffix);
  EXPECT_EQ(lr->steps_completed, kSteps);
  // ...and decoded bit-identical to the uninterrupted solo run.
  EXPECT_EQ(lr->outputs, golden);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.preemptions, 1u);
  EXPECT_EQ(snap.resumes, snap.preemptions);
  // Per-class accounting saw both classes complete and the preemption.
  ASSERT_EQ(snap.classes.size(), 2u);
  EXPECT_EQ(snap.classes[0].priority, 0);
  EXPECT_EQ(snap.classes[0].completed, 1u);
  EXPECT_GE(snap.classes[0].preempted, 1u);
  EXPECT_EQ(snap.classes[1].priority, 1);
  EXPECT_EQ(snap.classes[1].completed, 1u);
  EXPECT_EQ(snap.classes[1].preempted, 0u);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
}

// FifoPolicy is the default-off golden: arrival order, no priority bypass, no
// preemption — the historical scheduler bit for bit.
TEST(ServingPreemptTest, FifoPolicyServesArrivalOrderIgnoringPriority) {
  PreemptFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(1);
  opts.scheduler.policy = std::make_shared<const FifoPolicy>();
  ServingEngine engine(fx.db.get(), opts);

  // Backlog into a stopped engine: priorities descend then jump — FIFO must
  // ignore all of it.
  std::mutex mu;
  std::vector<uint64_t> completion_order;
  std::vector<RequestHandle> handles;
  const int priorities[] = {0, 2, 1, 5, 0};
  for (int i = 0; i < 5; ++i) {
    ServingRequest req = fx.MakeRequest(300 + static_cast<uint64_t>(i), 2);
    req.priority = priorities[i];
    req.tenant_id = static_cast<uint64_t>(i % 2);
    const uint64_t tag = static_cast<uint64_t>(i);
    req.on_token = [&, tag](size_t step, std::span<const float>) {
      if (step == 0) {
        std::lock_guard<std::mutex> lk(mu);
        completion_order.push_back(tag);
      }
    };
    auto h = engine.Submit(std::move(req));
    ASSERT_TRUE(h.ok());
    handles.push_back(h.value());
  }
  ASSERT_TRUE(engine.RunToCompletion().ok());
  for (auto& h : handles) {
    const RequestResult* r = h.TryWait();
    ASSERT_NE(r, nullptr);
    EXPECT_TRUE(r->status.ok()) << r->status.ToString();
  }
  ASSERT_EQ(completion_order.size(), 5u);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(completion_order[i], i) << "slot " << i;
  EXPECT_EQ(engine.snapshot().preemptions, 0u);
  EXPECT_EQ(engine.snapshot().resumes, 0u);
}

TEST(ServingPreemptTest, CancelWhileSuspendedFinalizesAndFreesParkedState) {
  PreemptFixture fx;
  const uint64_t host_baseline = fx.env.host_memory().current();
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());

  std::latch low_started(1);
  ServingRequest low = fx.MakeRequest(400, /*steps=*/100000);
  low.priority = 0;
  low.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) low_started.count_down();
  };
  auto low_h = engine.Submit(std::move(low));
  ASSERT_TRUE(low_h.ok());
  low_started.wait();

  std::latch high_started(1);
  ServingRequest high = fx.MakeRequest(401, /*steps=*/100000);
  high.priority = 1;
  high.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) high_started.count_down();
  };
  auto high_h = engine.Submit(std::move(high));
  ASSERT_TRUE(high_h.ok());
  high_started.wait();  // High decoding on the only slot => low is suspended.

  // The caller-thread cancel cannot steal the resume entry (the driver owns
  // the suspended lifecycle); the driver's sweep finalizes it.
  EXPECT_TRUE(low_h.value().Cancel());
  const RequestResult* lr = low_h.value().Wait();
  ASSERT_NE(lr, nullptr);
  EXPECT_TRUE(lr->status.IsCancelled()) << lr->status.ToString();
  EXPECT_EQ(lr->preemptions, 1u);
  EXPECT_EQ(lr->resumes, 0u);
  EXPECT_GE(lr->steps_completed, 1u);  // Its pre-suspension tokens stand.

  EXPECT_TRUE(high_h.value().Cancel());
  ASSERT_NE(high_h.value().Wait(), nullptr);
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(engine.snapshot().cancelled, 2u);
  // The parked KV's host reservation was returned: host residency is back to
  // the pre-engine baseline (the imported context only).
  EXPECT_EQ(fx.env.host_memory().current(), host_baseline);
}

TEST(ServingPreemptTest, DeadlineExpiryWhileSuspendedIsSwept) {
  PreemptFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
  ASSERT_TRUE(engine.Start().ok());

  std::latch low_started(1);
  ServingRequest low = fx.MakeRequest(500, /*steps=*/100000);
  low.priority = 0;
  low.deadline_seconds = 0.15;  // Plenty to admit + decode; hopeless for 1e5.
  low.on_token = [&](size_t step, std::span<const float>) {
    if (step == 0) low_started.count_down();
  };
  auto low_h = engine.Submit(std::move(low));
  ASSERT_TRUE(low_h.ok());
  low_started.wait();

  // The hog never finishes on its own, so the low request can never resume:
  // its deadline expires while it waits suspended.
  ServingRequest high = fx.MakeRequest(501, /*steps=*/100000);
  high.priority = 1;
  auto high_h = engine.Submit(std::move(high));
  ASSERT_TRUE(high_h.ok());

  const RequestResult* lr = low_h.value().Wait();
  ASSERT_NE(lr, nullptr);
  EXPECT_TRUE(lr->status.IsDeadlineExceeded()) << lr->status.ToString();
  EXPECT_GE(lr->preemptions, 1u);
  EXPECT_EQ(lr->resumes, 0u);

  EXPECT_TRUE(high_h.value().Cancel());
  ASSERT_NE(high_h.value().Wait(), nullptr);
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_EQ(engine.snapshot().deadline_exceeded, 1u);
}

// Suspension racing retirement: victims picked from a stale running view may
// already be terminal when the suspension lands — they must retire normally
// (never strand in suspended_), and every other request must still reach a
// typed terminal state. Mixed priorities/tenants/deadlines/cancels racing the
// preempting driver from multiple threads; runs under TSan in CI.
TEST(ServingPreemptTest, PreemptionStormRacesDriver) {
  constexpr size_t kRequests = 30;
  PreemptFixture fx;
  ServingEngineOptions opts = fx.EngineOptions(3);
  opts.scheduler.tenant_weights[1] = 2.0;
  ServingEngine engine(fx.db.get(), opts);
  ASSERT_TRUE(engine.Start().ok());

  std::vector<RequestHandle> handles(kRequests);
  for (size_t i = 0; i < kRequests; ++i) {
    // Short decodes (1–6 steps) keep retirement racing suspension: a victim
    // advised this boundary is often terminal by the time it would suspend.
    ServingRequest req = fx.MakeRequest(600 + i, 1 + i % 6);
    req.priority = static_cast<int>(i % 3);
    req.tenant_id = i % 3;
    if (i % 5 == 1) req.deadline_seconds = 0.002 * static_cast<double>(1 + i % 7);
    auto h = engine.Submit(std::move(req));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    handles[i] = h.value();
  }

  std::vector<std::thread> cancellers;
  for (int t = 0; t < 2; ++t) {
    cancellers.emplace_back([&, t] {
      for (size_t i = static_cast<size_t>(t); i < kRequests; i += 2) {
        if (i % 5 == 2) handles[i].Cancel();
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : cancellers) th.join();

  size_t ok = 0, cancelled = 0, expired = 0;
  for (size_t i = 0; i < kRequests; ++i) {
    const RequestResult* r = handles[i].Wait();
    ASSERT_NE(r, nullptr) << "request " << i;
    if (r->status.ok()) {
      ++ok;
      EXPECT_EQ(r->steps_completed, 1 + i % 6) << "request " << i;
    } else if (r->status.IsCancelled()) {
      ++cancelled;
    } else if (r->status.IsDeadlineExceeded()) {
      ++expired;
    } else {
      FAIL() << "untyped terminal status: " << r->status.ToString();
    }
  }
  EXPECT_EQ(ok + cancelled + expired, kRequests);
  EXPECT_GT(ok, 0u);

  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.completed, kRequests);
  EXPECT_EQ(snap.cancelled, cancelled);
  EXPECT_EQ(snap.deadline_exceeded, expired);
  // A preempted request either resumed or was finalized while suspended —
  // resumes can never exceed preemptions.
  EXPECT_LE(snap.resumes, snap.preemptions);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  // No starvation: every tenant that submitted work was admitted, and the
  // ledger proves it.
  ASSERT_EQ(snap.tenants.size(), 3u);
  for (const TenantServingStats& t : snap.tenants) {
    EXPECT_GT(t.admitted, 0u) << "tenant " << t.tenant_id;
    EXPECT_GT(t.completed, 0u) << "tenant " << t.tenant_id;
  }
  EXPECT_DOUBLE_EQ(snap.tenants[1].weight, 2.0);
}

}  // namespace
}  // namespace alaya
