#include "src/common/status.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "Ok");
}

TEST(StatusTest, FactoriesSetCodeAndMessage) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  Status s = Status::NotFound("missing context");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "missing context");
  EXPECT_EQ(s.ToString(), "NotFound: missing context");
}

TEST(StatusTest, Predicates) {
  EXPECT_TRUE(Status::NotFound("").IsNotFound());
  EXPECT_TRUE(Status::InvalidArgument("").IsInvalidArgument());
  EXPECT_TRUE(Status::IoError("").IsIoError());
  EXPECT_TRUE(Status::Corruption("").IsCorruption());
  EXPECT_FALSE(Status::Ok().IsNotFound());
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::Ok(), Status::Ok());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
}

TEST(StatusTest, CodeNamesCoverAllCodes) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "Ok");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotSupported), "NotSupported");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(0), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, TakeValueMoves) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string v = r.TakeValue();
  EXPECT_EQ(v.size(), 1000u);
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::Ok();
}

Status Chain(int x) {
  ALAYA_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::Ok();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Result<int> ChainAssign(int x) {
  ALAYA_ASSIGN_OR_RETURN(int y, Doubled(x));
  return y + 1;
}

TEST(StatusMacrosTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Chain(1).ok());
  EXPECT_EQ(Chain(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturnPropagates) {
  Result<int> ok = ChainAssign(5);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 11);
  Result<int> bad = ChainAssign(-5);
  EXPECT_FALSE(bad.ok());
}

}  // namespace
}  // namespace alaya
