#include "src/attention/partial_softmax.h"

#include <gtest/gtest.h>

#include <cmath>

#include "src/common/rng.h"
#include "src/common/vec_math.h"

namespace alaya {
namespace {

/// Reference: monolithic softmax-weighted sum.
std::vector<float> ReferenceAttention(const std::vector<float>& logits,
                                      const std::vector<std::vector<float>>& values,
                                      size_t d) {
  std::vector<float> scores = logits;
  SoftmaxInPlace(scores.data(), scores.size());
  std::vector<float> out(d, 0.f);
  for (size_t i = 0; i < scores.size(); ++i) {
    Axpy(out.data(), values[i].data(), d, scores[i]);
  }
  return out;
}

TEST(PartialSoftmaxTest, SingleAccumulateMatchesReference) {
  const size_t d = 8;
  Rng rng(1);
  std::vector<float> logits = {0.5f, 2.f, -1.f, 3.f};
  std::vector<std::vector<float>> values;
  for (size_t i = 0; i < logits.size(); ++i) {
    values.emplace_back(d);
    rng.FillGaussian(values.back().data(), d);
  }
  PartialAttention state(d);
  for (size_t i = 0; i < logits.size(); ++i) {
    state.Accumulate(logits[i], values[i].data());
  }
  std::vector<float> out(d);
  state.Finalize(out.data());
  auto ref = ReferenceAttention(logits, values, d);
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(out[i], ref[i], 1e-5);
}

TEST(PartialSoftmaxTest, AccumulateOrderInvariant) {
  const size_t d = 4;
  Rng rng(2);
  std::vector<float> logits = {5.f, -3.f, 0.f, 2.f, 4.f};
  std::vector<std::vector<float>> values;
  for (size_t i = 0; i < logits.size(); ++i) {
    values.emplace_back(d);
    rng.FillGaussian(values.back().data(), d);
  }
  PartialAttention fwd(d), rev(d);
  for (size_t i = 0; i < logits.size(); ++i) fwd.Accumulate(logits[i], values[i].data());
  for (size_t i = logits.size(); i > 0; --i) {
    rev.Accumulate(logits[i - 1], values[i - 1].data());
  }
  std::vector<float> a(d), b(d);
  fwd.Finalize(a.data());
  rev.Finalize(b.data());
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(a[i], b[i], 1e-5);
}

TEST(PartialSoftmaxTest, EmptyFinalizeIsZero) {
  PartialAttention state(6);
  std::vector<float> out(6, 99.f);
  state.Finalize(out.data());
  for (float x : out) EXPECT_EQ(x, 0.f);
  EXPECT_TRUE(state.empty());
}

TEST(PartialSoftmaxTest, MergeWithEmptyIsIdentity) {
  const size_t d = 4;
  PartialAttention a(d), b(d);
  const float v[] = {1.f, 2.f, 3.f, 4.f};
  a.Accumulate(1.f, v);
  std::vector<float> before(d), after(d);
  a.Finalize(before.data());
  a.Merge(b);  // Merge empty into a.
  a.Finalize(after.data());
  for (size_t i = 0; i < d; ++i) EXPECT_EQ(before[i], after[i]);

  b.Merge(a);  // Merge a into empty b.
  std::vector<float> bo(d);
  b.Finalize(bo.data());
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(bo[i], before[i], 1e-6);
}

TEST(PartialSoftmaxTest, StableUnderHugeLogits) {
  const size_t d = 2;
  PartialAttention state(d);
  const float v1[] = {1.f, 0.f};
  const float v2[] = {0.f, 1.f};
  state.Accumulate(500.f, v1);
  state.Accumulate(502.f, v2);
  std::vector<float> out(d);
  state.Finalize(out.data());
  EXPECT_FALSE(std::isnan(out[0]));
  // exp(2)/(1+exp(2)) weight on v2.
  EXPECT_NEAR(out[1], std::exp(2.f) / (1.f + std::exp(2.f)), 1e-4);
}

/// Property sweep: merging any partition of the token set equals the
/// monolithic computation.
class MergePartitionTest : public ::testing::TestWithParam<int> {};

TEST_P(MergePartitionTest, MergeEqualsMonolithic) {
  const int num_partitions = GetParam();
  const size_t d = 16;
  const size_t n = 64;
  Rng rng(1000 + num_partitions);
  std::vector<float> logits(n);
  std::vector<std::vector<float>> values;
  for (size_t i = 0; i < n; ++i) {
    logits[i] = 6.f * rng.GaussianFloat();
    values.emplace_back(d);
    rng.FillGaussian(values.back().data(), d);
  }
  // Random partition assignment.
  std::vector<int> part(n);
  for (size_t i = 0; i < n; ++i) {
    part[i] = static_cast<int>(rng.UniformInt(num_partitions));
  }
  std::vector<PartialAttention> states;
  for (int p = 0; p < num_partitions; ++p) states.emplace_back(d);
  for (size_t i = 0; i < n; ++i) {
    states[part[i]].Accumulate(logits[i], values[i].data());
  }
  PartialAttention merged(d);
  for (auto& s : states) merged.Merge(s);
  std::vector<float> out(d);
  merged.Finalize(out.data());
  auto ref = ReferenceAttention(logits, values, d);
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(out[i], ref[i], 2e-5) << "i=" << i;
}

INSTANTIATE_TEST_SUITE_P(Partitions, MergePartitionTest,
                         ::testing::Values(1, 2, 3, 4, 7, 16, 64));

}  // namespace
}  // namespace alaya
