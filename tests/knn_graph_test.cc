#include "src/index/knn_graph.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

using testutil::BruteTopK;

TEST(KnnGraphTest, ExactMatchesBruteForce) {
  Rng rng(1);
  VectorSet keys(16), queries(16);
  std::vector<float> v(16);
  for (int i = 0; i < 300; ++i) {
    rng.FillGaussian(v.data(), 16);
    keys.Append(v.data());
  }
  for (int i = 0; i < 20; ++i) {
    rng.FillGaussian(v.data(), 16);
    queries.Append(v.data());
  }
  BipartiteKnnOptions opts;
  opts.k = 7;
  auto lists = ExactBipartiteKnn(keys.View(), queries.View(), opts);
  ASSERT_EQ(lists.size(), 20u);
  for (uint32_t qi = 0; qi < 20; ++qi) {
    auto expected = BruteTopK(keys.View(), queries.Vec(qi), 7);
    ASSERT_EQ(lists[qi].size(), 7u);
    for (size_t j = 0; j < 7; ++j) {
      EXPECT_EQ(lists[qi][j].id, expected[j].id) << "q=" << qi << " j=" << j;
    }
  }
}

TEST(KnnGraphTest, SequentialEqualsParallel) {
  Rng rng(2);
  VectorSet keys(8), queries(8);
  std::vector<float> v(8);
  for (int i = 0; i < 500; ++i) {
    rng.FillGaussian(v.data(), 8);
    keys.Append(v.data());
  }
  for (int i = 0; i < 64; ++i) {
    rng.FillGaussian(v.data(), 8);
    queries.Append(v.data());
  }
  BipartiteKnnOptions seq;
  seq.k = 5;
  seq.sequential = true;
  BipartiteKnnOptions par;
  par.k = 5;
  auto a = ExactBipartiteKnn(keys.View(), queries.View(), seq);
  auto b = ExactBipartiteKnn(keys.View(), queries.View(), par);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size());
    for (size_t j = 0; j < a[i].size(); ++j) EXPECT_EQ(a[i][j].id, b[i][j].id);
  }
}

TEST(KnnGraphTest, EmptyInputs) {
  VectorSet keys(8), queries(8);
  BipartiteKnnOptions opts;
  EXPECT_TRUE(ExactBipartiteKnn(keys.View(), queries.View(), opts).empty());
  std::vector<float> v(8, 1.f);
  queries.Append(v.data());
  auto lists = ExactBipartiteKnn(keys.View(), queries.View(), opts);
  ASSERT_EQ(lists.size(), 1u);
  EXPECT_TRUE(lists[0].empty());
}

TEST(KnnGraphTest, KLargerThanKeyCount) {
  Rng rng(3);
  VectorSet keys(8), queries(8);
  std::vector<float> v(8);
  for (int i = 0; i < 5; ++i) {
    rng.FillGaussian(v.data(), 8);
    keys.Append(v.data());
  }
  rng.FillGaussian(v.data(), 8);
  queries.Append(v.data());
  BipartiteKnnOptions opts;
  opts.k = 100;
  auto lists = ExactBipartiteKnn(keys.View(), queries.View(), opts);
  EXPECT_EQ(lists[0].size(), 5u);
}

TEST(KnnGraphTest, FlopsFormula) {
  EXPECT_DOUBLE_EQ(BipartiteKnnFlops(100, 10, 8), 2.0 * 100 * 10 * 8);
}

}  // namespace
}  // namespace alaya
