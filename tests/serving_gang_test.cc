// Device gangs: context parallelism for prompts whose KV footprint exceeds
// any single device's budget. The acceptance bar: a devices=4 gang decode of
// a budget-exceeding prompt is BIT-IDENTICAL to the single-device run of the
// same prompt — the shard map assigns whole accumulation blocks and the
// ring-merged partial softmax is exact, so ganging moves residency, never
// math. Also: smallest-sufficient-gang admission (a subset budget gangs 2,
// not 4), the kNeverFits gate relaxing to the largest permitted gang's
// combined budget, cross-device KV migration racing retirement/re-homing, the
// driver's skew-triggered rebalance probe, suspend-spill of parked KV to disk
// with bit-identical resume, and a TSan-targeted multi-gang stress run.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

/// One stored context per tenant (prefix-disjoint token sequences); requests
/// fully reuse their tenant's context and decode a deterministic tail.
struct GangFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t context_tokens = 160;
  size_t tenants = 1;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  std::vector<uint64_t> context_ids;
  ThreadPool pool{4};

  explicit GangFixture(size_t num_tenants = 1, uint64_t tier_host_budget = 0)
      : tenants(num_tenants) {
    options.model = model;
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    options.materialize_pool = &pool;
    options.tier.host_budget_bytes = tier_host_budget;
    db = std::make_unique<AlayaDB>(options, &env);
    for (size_t t = 0; t < tenants; ++t) {
      auto imported = db->Import(ContextTokens(t), MakeKv(/*seed=*/1 + t));
      EXPECT_TRUE(imported.ok()) << imported.status().ToString();
      context_ids.push_back(imported.ValueOr(0));
    }
  }

  ServingEngineOptions EngineOptions(size_t max_concurrent, size_t devices,
                                     size_t max_gang = 1) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.devices = devices;
    o.max_gang_size = max_gang;
    o.pool = &pool;
    return o;
  }

  std::vector<int32_t> ContextTokens(size_t tenant) const {
    std::vector<int32_t> t(context_tokens);
    for (size_t i = 0; i < context_tokens; ++i) {
      t[i] = static_cast<int32_t>(1000 * (tenant + 1) + i);
    }
    return t;
  }

  std::unique_ptr<KvCache> MakeKv(uint64_t seed) const {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < context_tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    return kv;
  }

  ServingRequest MakeRequest(size_t tenant, uint64_t seed, size_t steps) const {
    ServingRequest r;
    r.prompt = ContextTokens(tenant);
    r.max_new_tokens = steps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    return r;
  }

  /// The projected device footprint of MakeRequest(0, ..., steps) — the
  /// number the per-device budget is sized against.
  uint64_t FootprintBytes(size_t steps) {
    ServingEngine sizer(db.get(), EngineOptions(1, 1));
    return sizer.scheduler().Estimate(MakeRequest(0, 1, steps)).gpu_bytes;
  }
};

/// Runs one request to completion and returns its result (asserting success).
const RequestResult* RunOne(ServingEngine* engine, ServingRequest request) {
  auto h = engine->Submit(std::move(request));
  EXPECT_TRUE(h.ok()) << h.status().ToString();
  if (!h.ok()) return nullptr;
  EXPECT_TRUE(engine->RunToCompletion().ok());
  return h.value().Wait();
}

TEST(ServingGangTest, GangOfFourBitIdenticalToSingleDeviceGolden) {
  constexpr size_t kSteps = 6;

  // Golden: unbounded single device.
  GangFixture golden_fx;
  ServingEngine golden(golden_fx.db.get(), golden_fx.EngineOptions(1, 1));
  const RequestResult* g = RunOne(&golden, golden_fx.MakeRequest(0, 11, kSteps));
  ASSERT_NE(g, nullptr);
  ASSERT_TRUE(g->status.ok()) << g->status.ToString();

  // Gang: a per-device budget in [ceil(b/4), b/3) rejects solo and every
  // smaller gang, so placement must shard across exactly four devices.
  GangFixture fx;
  const uint64_t bytes = fx.FootprintBytes(kSteps);
  ASSERT_GT(bytes, 96u);  // The interval below needs headroom to be non-empty.
  ServingEngineOptions opts = fx.EngineOptions(1, 4, /*max_gang=*/4);
  opts.scheduler.gpu_budget_bytes = bytes * 7 / 24;
  ServingEngine engine(fx.db.get(), opts);
  const RequestResult* r = RunOne(&engine, fx.MakeRequest(0, 11, kSteps));
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->steps_completed, kSteps);

  // The core invariant: ganging is residency orchestration, not new math.
  ASSERT_EQ(r->outputs.size(), g->outputs.size());
  EXPECT_EQ(r->outputs, g->outputs);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.gang_admissions, 1u);
  EXPECT_GT(snap.gang_ring_transfer_bytes, 0u);
  ASSERT_EQ(snap.devices.size(), 4u);
  for (const DeviceServingStats& ds : snap.devices) {
    EXPECT_EQ(ds.gang_shards, 1u) << "device " << ds.device;
    EXPECT_EQ(ds.reserved_bytes, 0u) << "leaked reservation on " << ds.device;
    EXPECT_EQ(ds.active_sessions, 0u) << "device " << ds.device;
  }
}

TEST(ServingGangTest, SubsetBudgetAdmitsSmallestSufficientGang) {
  constexpr size_t kSteps = 4;
  GangFixture golden_fx;
  ServingEngine golden(golden_fx.db.get(), golden_fx.EngineOptions(1, 1));
  const RequestResult* g = RunOne(&golden, golden_fx.MakeRequest(0, 21, kSteps));
  ASSERT_NE(g, nullptr);

  // Budget in [ceil(b/2), b): solo never fits, a pair does — with four
  // devices available, the gang must stop at two members, leaving the rest
  // of the fleet free.
  GangFixture fx;
  const uint64_t bytes = fx.FootprintBytes(kSteps);
  ServingEngineOptions opts = fx.EngineOptions(1, 4, /*max_gang=*/4);
  opts.scheduler.gpu_budget_bytes = bytes * 3 / 4;
  ServingEngine engine(fx.db.get(), opts);
  const RequestResult* r = RunOne(&engine, fx.MakeRequest(0, 21, kSteps));
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();
  EXPECT_EQ(r->outputs, g->outputs);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.gang_admissions, 1u);
  size_t members = 0;
  for (const DeviceServingStats& ds : snap.devices) {
    members += ds.gang_shards;
  }
  EXPECT_EQ(members, 2u);  // Smallest sufficient gang, not the whole fleet.
}

TEST(ServingGangTest, NeverFitsGateRelaxesToLargestPermittedGang) {
  constexpr size_t kSteps = 4;
  GangFixture fx;
  const uint64_t bytes = fx.FootprintBytes(kSteps);
  const uint64_t budget = bytes / 3;  // One device can never hold it.

  // Without gangs the request is permanently unplaceable at the front door.
  ServingEngineOptions solo = fx.EngineOptions(1, 4, /*max_gang=*/1);
  solo.scheduler.gpu_budget_bytes = budget;
  {
    ServingEngine engine(fx.db.get(), solo);
    auto h = engine.Submit(fx.MakeRequest(0, 31, kSteps));
    ASSERT_FALSE(h.ok());
    EXPECT_EQ(h.status().code(), StatusCode::kNeverFits);
  }
  // With a gang of four permitted, the same request is admissible.
  ServingEngineOptions gang = fx.EngineOptions(1, 4, /*max_gang=*/4);
  gang.scheduler.gpu_budget_bytes = budget;
  {
    ServingEngine engine(fx.db.get(), gang);
    auto h = engine.Submit(fx.MakeRequest(0, 31, kSteps));
    ASSERT_TRUE(h.ok()) << h.status().ToString();
    ASSERT_TRUE(engine.RunToCompletion().ok());
    EXPECT_TRUE(h.value().Wait()->status.ok());
    EXPECT_EQ(engine.snapshot().gang_admissions, 1u);
  }
}

TEST(ServingGangTest, MigrateShardSemanticsAndRaces) {
  GangFixture fx(/*num_tenants=*/2);
  SimEnvironment& env = fx.env;
  env.devices().EnsureAtLeast(3);
  const uint64_t id = fx.context_ids[0];

  // Happy path: residency moves, the DESTINATION clock pays the modeled
  // window transfer, and the byte count matches the cross-device reuse
  // formula exactly.
  const double before = env.device(1).clock().Seconds();
  auto moved = fx.db->MigrateShard(id, /*from=*/0, /*to=*/1);
  ASSERT_TRUE(moved.ok()) << moved.status().ToString();
  const WindowCache window(fx.options.session.window);
  const size_t window_tokens =
      std::min(window.Size(fx.context_tokens), fx.context_tokens);
  EXPECT_EQ(moved.value(), window_tokens * fx.model.KvBytesPerToken());
  EXPECT_GT(env.device(1).clock().Seconds(), before);
  EXPECT_EQ(fx.db->contexts().FindShared(id)->resident_device(), 1);

  // Stale plan (migration racing a session re-homing the context): the
  // context is no longer resident on `from`, so the move must refuse instead
  // of teleporting KV the planner mislocated.
  auto stale = fx.db->MigrateShard(id, /*from=*/0, /*to=*/2);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.status().code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(fx.db->contexts().FindShared(id)->resident_device(), 1);

  // Degenerate move.
  auto self = fx.db->MigrateShard(id, 1, 1);
  ASSERT_FALSE(self.ok());
  EXPECT_EQ(self.status().code(), StatusCode::kInvalidArgument);

  // Migration racing retirement: the context was removed from the store
  // between planning and execution — typed kNotFound, nothing charged.
  const uint64_t gone = fx.context_ids[1];
  ASSERT_TRUE(fx.db->contexts().Remove(gone));
  const double clock2 = env.device(2).clock().Seconds();
  auto removed = fx.db->MigrateShard(gone, 0, 2);
  ASSERT_FALSE(removed.ok());
  EXPECT_EQ(removed.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(env.device(2).clock().Seconds(), clock2);
}

TEST(ServingGangTest, RebalanceProbeShedsWarmShardOffHotDevice) {
  constexpr size_t kSteps = 6;
  // Two contexts warm on device 0; a decode pinned to device 0 makes it hot
  // while device 1 idles. The step-boundary probe must migrate the OTHER
  // (unpinned) context to the cold device — exactly once — and leave the
  // running session's own context alone.
  GangFixture fx(/*num_tenants=*/2);
  ServingEngineOptions opts = fx.EngineOptions(1, 2);
  opts.rebalance_skew_factor = 1.5;
  ServingEngine engine(fx.db.get(), opts);
  const RequestResult* r = RunOne(&engine, fx.MakeRequest(0, 41, kSteps));
  ASSERT_NE(r, nullptr);
  ASSERT_TRUE(r->status.ok()) << r->status.ToString();

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.shard_migrations, 1u);
  const WindowCache window(fx.options.session.window);
  const size_t window_tokens =
      std::min(window.Size(fx.context_tokens), fx.context_tokens);
  EXPECT_EQ(snap.shard_migrated_bytes,
            window_tokens * fx.model.KvBytesPerToken());
  // The bystander context moved to the cold device; the session's own
  // context stayed where its session ran.
  EXPECT_EQ(fx.db->contexts().FindShared(fx.context_ids[1])->resident_device(), 1);
  EXPECT_EQ(fx.db->contexts().FindShared(fx.context_ids[0])->resident_device(), 0);
}

TEST(ServingGangTest, SuspendSpillToDiskResumesBitIdentical) {
  constexpr size_t kLowSteps = 24;
  constexpr size_t kHighSteps = 2;

  // Golden: the same low-priority decode on an idle engine, never preempted.
  GangFixture golden_fx(/*num_tenants=*/1, /*tier_host_budget=*/1ull << 30);
  ServingEngine golden(golden_fx.db.get(), golden_fx.EngineOptions(1, 1));
  const RequestResult* g =
      RunOne(&golden, golden_fx.MakeRequest(0, 51, kLowSteps));
  ASSERT_NE(g, nullptr);
  ASSERT_TRUE(g->status.ok());

  // Live engine, one slot, spill budget so small every suspension must park
  // its KV on disk through the tier store rather than holding host DRAM.
  GangFixture fx(/*num_tenants=*/1, /*tier_host_budget=*/1ull << 30);
  ASSERT_NE(fx.db->tiers(), nullptr);
  ServingEngineOptions opts = fx.EngineOptions(1, 1);
  opts.suspend_spill_host_budget_bytes = 1;
  ServingEngine engine(fx.db.get(), opts);
  ASSERT_TRUE(engine.Start().ok());

  // Deterministic interleaving: the low's first decoded token parks the
  // driver until the high request is queued, so the low is provably
  // mid-decode when the high contends for the only slot — it cannot race to
  // completion on a loaded machine.
  std::atomic<size_t> low_steps{0};
  std::atomic<bool> high_submitted{false};
  ServingRequest low = fx.MakeRequest(0, 51, kLowSteps);
  low.priority = 0;
  low.on_token = [&low_steps, &high_submitted](size_t step,
                                               std::span<const float>) {
    low_steps.fetch_add(1);
    while (step == 0 && !high_submitted.load()) {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  };
  auto lh = engine.Submit(std::move(low));
  ASSERT_TRUE(lh.ok());
  while (low_steps.load() == 0) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ServingRequest high = fx.MakeRequest(0, 52, kHighSteps);
  high.priority = 1;
  auto hh = engine.Submit(std::move(high));
  ASSERT_TRUE(hh.ok());
  high_submitted.store(true);

  const RequestResult* hr = hh.value().Wait();
  ASSERT_NE(hr, nullptr);
  EXPECT_TRUE(hr->status.ok()) << hr->status.ToString();
  const RequestResult* lr = lh.value().Wait();
  ASSERT_NE(lr, nullptr);
  ASSERT_TRUE(lr->status.ok()) << lr->status.ToString();
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());

  // The low kept every decode step across the spill/restore round-trip, and
  // its outputs are bit-identical to the never-preempted golden — the
  // serializer round-trip is exact, not approximate.
  EXPECT_EQ(lr->steps_completed, kLowSteps);
  EXPECT_GE(lr->preemptions, 1u);
  EXPECT_EQ(lr->preemptions, lr->resumes);
  EXPECT_EQ(lr->outputs, g->outputs);

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.preemptions, 1u);
  EXPECT_GE(snap.suspend_spills, 1u);
  EXPECT_EQ(snap.suspend_spills, snap.suspend_restores);
}

TEST(ServingGangTest, MultiGangStressAllComplete) {
  constexpr size_t kSteps = 4;
  constexpr size_t kRequests = 8;

  // Per-request goldens on an unbounded single device.
  GangFixture golden_fx(/*num_tenants=*/2);
  std::vector<std::vector<float>> goldens;
  for (size_t i = 0; i < kRequests; ++i) {
    ServingEngine golden(golden_fx.db.get(), golden_fx.EngineOptions(1, 1));
    const RequestResult* g =
        RunOne(&golden, golden_fx.MakeRequest(i % 2, 100 + i, kSteps));
    ASSERT_NE(g, nullptr);
    ASSERT_TRUE(g->status.ok());
    goldens.push_back(g->outputs);
  }

  // Budget in [ceil(b/2), b): no request fits solo, so every admission gangs
  // at least two devices — and concurrent residents can widen a later gang
  // (smallest sufficient given CURRENT free bytes, not geometry alone). The
  // TSan target: concurrent gang admissions, per-member charging, ring
  // accounting and release must all be race-free.
  GangFixture fx(/*num_tenants=*/2);
  const uint64_t bytes = fx.FootprintBytes(kSteps);
  ServingEngineOptions opts = fx.EngineOptions(4, 4, /*max_gang=*/4);
  opts.scheduler.gpu_budget_bytes = bytes * 3 / 4;
  ServingEngine engine(fx.db.get(), opts);
  ASSERT_TRUE(engine.Start().ok());

  std::vector<RequestHandle> handles(kRequests);
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = t; i < kRequests; i += 2) {
        auto h = engine.Submit(fx.MakeRequest(i % 2, 100 + i, kSteps));
        ASSERT_TRUE(h.ok()) << h.status().ToString();
        handles[i] = h.value();
      }
    });
  }
  for (std::thread& th : submitters) th.join();
  for (size_t i = 0; i < kRequests; ++i) {
    const RequestResult* r = handles[i].Wait();
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->status.ok()) << "request " << i << ": " << r->status.ToString();
    EXPECT_EQ(r->steps_completed, kSteps);
    EXPECT_EQ(r->outputs, goldens[i]) << "request " << i;
  }
  engine.WaitIdle();
  ASSERT_TRUE(engine.Shutdown().ok());

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.gang_admissions, kRequests);
  size_t shards = 0;
  for (const DeviceServingStats& ds : snap.devices) shards += ds.gang_shards;
  EXPECT_GE(shards, kRequests * 2);  // Every admission spanned >= 2 members.
  EXPECT_GT(snap.gang_ring_transfer_bytes, 0u);
}

}  // namespace
}  // namespace alaya
