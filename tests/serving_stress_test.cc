// Concurrency stress for the serving engine's prefill + decode pipeline:
// multiple threads submit a mix of full-reuse, partial-prefix (prefill), and
// no-match (full prefill) requests while a driver thread runs the engine.
// Every request's outputs must be bit-identical to the same request run alone
// on an identical store — per-request isolation, and the concurrent run
// matching its sequential schedule. Runs under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

constexpr size_t kStored = 128;   // Tokens in the imported context.
constexpr size_t kSuffix = 24;    // Extra prompt tokens of the partial class.
constexpr size_t kNoMatch = 40;   // Prompt length of the no-match class.
constexpr size_t kSteps = 3;

enum class Kind { kFullReuse, kPartialPrefix, kNoMatch };

struct RequestKind {
  Kind kind;
  uint64_t seed;
};

const RequestKind kKinds[] = {
    {Kind::kFullReuse, 71},    {Kind::kFullReuse, 72},
    {Kind::kPartialPrefix, 73}, {Kind::kPartialPrefix, 74},
    {Kind::kNoMatch, 75},      {Kind::kNoMatch, 76},
};

void FillPromptToken(const ModelConfig& m, size_t token, uint32_t layer, float* q,
                     float* k, float* v) {
  Rng rng(0xBEEF * 2654435761ull + token * 9176ull + layer * 97ull);
  rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
  rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
  rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
}

int32_t PromptTokenId(size_t i) { return 900 + static_cast<int32_t>(i); }

struct StressFixture {
  ModelConfig model = ModelConfig::Tiny();
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  ThreadPool pool{4};

  StressFixture() {
    options.model = model;
    // Small threshold: the sparse DIPRS path engages over the stored context
    // (the stress must cover retrieval, not just full attention).
    options.session.optimizer.short_context_threshold = 64;
    options.session.window = WindowConfig{8, 16};
    db = std::make_unique<AlayaDB>(options, &env);

    auto kv = std::make_unique<KvCache>(model);
    const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
    const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
    std::vector<float> q(qdim), k(kvdim), v(kvdim);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < kStored; ++t) {
        FillPromptToken(model, t, layer, q.data(), k.data(), v.data());
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    std::vector<int32_t> tokens(kStored);
    for (size_t i = 0; i < kStored; ++i) tokens[i] = PromptTokenId(i);
    auto imported = db->Import(std::move(tokens), std::move(kv));
    EXPECT_TRUE(imported.ok()) << imported.status().ToString();
  }

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  ServingRequest MakeRequest(const RequestKind& rk) const {
    ServingRequest r;
    size_t prompt_tokens = 0;
    switch (rk.kind) {
      case Kind::kFullReuse:
        prompt_tokens = kStored;
        break;
      case Kind::kPartialPrefix:
        prompt_tokens = kStored + kSuffix;
        break;
      case Kind::kNoMatch:
        prompt_tokens = kNoMatch;
        break;
    }
    r.prompt.resize(prompt_tokens);
    for (size_t i = 0; i < prompt_tokens; ++i) {
      // No-match prompts live in a disjoint id space: zero shared prefix.
      r.prompt[i] = rk.kind == Kind::kNoMatch ? PromptTokenId(i) + 1'000'000
                                              : PromptTokenId(i);
    }
    r.max_new_tokens = kSteps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_prompt = [m](size_t token, uint32_t layer, float* q, float* k, float* v) {
      FillPromptToken(m, token, layer, q, k, v);
    };
    const uint64_t seed = rk.seed;
    r.fill_step = [m, seed](size_t step, uint32_t layer, float* q, float* k,
                            float* v) {
      Rng rng(seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    return r;
  }

  size_t ExpectedPrefill(Kind kind) const {
    switch (kind) {
      case Kind::kFullReuse:
        return 0;
      case Kind::kPartialPrefix:
        return kSuffix;
      case Kind::kNoMatch:
        return kNoMatch;
    }
    return 0;
  }
};

TEST(ServingStressTest, ThreadedMixedWorkloadMatchesSequentialSchedule) {
  // Goldens: each request kind run alone on an identical store — the
  // sequential schedule every concurrent result must match bit for bit.
  std::vector<std::vector<float>> golden(std::size(kKinds));
  for (size_t i = 0; i < std::size(kKinds); ++i) {
    StressFixture fx;
    ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
    auto id = engine.Submit(fx.MakeRequest(kKinds[i]));
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    ASSERT_TRUE(engine.RunToCompletion().ok());
    const RequestResult* r = engine.result(id.value().id());
    ASSERT_NE(r, nullptr);
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    ASSERT_EQ(r->prefilled_tokens, fx.ExpectedPrefill(kKinds[i].kind));
    ASSERT_FALSE(r->outputs.empty());
    golden[i] = r->outputs;
  }

  constexpr size_t kThreads = 3;
  StressFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(4));

  // Driver: keep running until every submitter has finished and the queue has
  // drained. RunToCompletion races with Submit by design.
  std::atomic<bool> submitters_done{false};
  std::mutex status_mu;
  std::vector<Status> run_statuses;
  std::thread driver([&] {
    for (;;) {
      Status s = engine.RunToCompletion();
      {
        std::lock_guard<std::mutex> lk(status_mu);
        run_statuses.push_back(s);
      }
      if (!s.ok()) return;
      if (submitters_done.load() && engine.scheduler().queued() == 0) return;
      std::this_thread::yield();
    }
  });

  // Submitters: each thread pushes every kind, interleaved with the driver.
  std::mutex ids_mu;
  std::vector<std::pair<size_t, uint64_t>> ids;  // (kind index, request id).
  std::vector<std::thread> submitters;
  for (size_t t = 0; t < kThreads; ++t) {
    submitters.emplace_back([&, t] {
      for (size_t i = 0; i < std::size(kKinds); ++i) {
        const size_t kind = (i + t) % std::size(kKinds);  // Stagger per thread.
        auto id = engine.Submit(fx.MakeRequest(kKinds[kind]));
        EXPECT_TRUE(id.ok()) << id.status().ToString();
        if (id.ok()) {
          std::lock_guard<std::mutex> lk(ids_mu);
          ids.emplace_back(kind, id.value().id());
        }
        std::this_thread::yield();
      }
    });
  }
  for (auto& th : submitters) th.join();
  submitters_done.store(true);
  driver.join();
  for (const Status& s : run_statuses) {
    ASSERT_TRUE(s.ok()) << s.ToString();
  }

  // Per-request isolation: every concurrent result is bit-identical to its
  // kind's solo (sequential-schedule) golden.
  ASSERT_EQ(ids.size(), kThreads * std::size(kKinds));
  size_t expected_prefilled = 0;
  for (const auto& [kind, id] : ids) {
    const RequestResult* r = engine.result(id);
    ASSERT_NE(r, nullptr) << "request " << id << " has no result";
    ASSERT_TRUE(r->status.ok()) << r->status.ToString();
    EXPECT_EQ(r->prefilled_tokens, fx.ExpectedPrefill(kKinds[kind].kind));
    EXPECT_EQ(r->steps_completed, kSteps);
    EXPECT_EQ(r->outputs, golden[kind]) << "kind " << kind << ", request " << id;
    expected_prefilled += fx.ExpectedPrefill(kKinds[kind].kind);
  }

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_EQ(snap.submitted, ids.size());
  EXPECT_EQ(snap.completed, ids.size());
  EXPECT_EQ(snap.tokens_decoded, ids.size() * kSteps);
  EXPECT_EQ(snap.tokens_prefilled, expected_prefilled);
  EXPECT_EQ(engine.scheduler().active(), 0u);
  EXPECT_EQ(engine.scheduler().queued(), 0u);
  EXPECT_GT(snap.peak_gpu_bytes, 0u);
}

TEST(ServingStressTest, MonitoringSnapshotRacesWithDriver) {
  StressFixture fx;
  ServingEngine engine(fx.db.get(), fx.EngineOptions(3));
  std::vector<uint64_t> ids;
  for (size_t i = 0; i < std::size(kKinds); ++i) {
    auto id = engine.Submit(fx.MakeRequest(kKinds[i]));
    ASSERT_TRUE(id.ok());
    ids.push_back(id.value().id());
  }

  // A monitoring thread polls snapshot() and result() while the driver runs —
  // the read side TSan must see as clean.
  std::atomic<bool> stop{false};
  std::thread monitor([&] {
    while (!stop.load()) {
      const ServingSnapshot snap = engine.snapshot();
      EXPECT_LE(snap.completed, ids.size());
      for (uint64_t id : ids) {
        const RequestResult* r = engine.result(id);
        if (r != nullptr) EXPECT_EQ(r->steps_completed, kSteps);
      }
      std::this_thread::yield();
    }
  });
  ASSERT_TRUE(engine.RunToCompletion().ok());
  stop.store(true);
  monitor.join();
  EXPECT_EQ(engine.snapshot().completed, ids.size());
}

}  // namespace
}  // namespace alaya
