// Unit tests for the prefill-aware admission math: memory reservations count
// the prompt tokens a request will have to prefill (they land in session-local
// KV and stay device-resident), and the TPOT SLO check accounts for the
// modeled per-step cost of the prefill phase, not just steady-state decode.
#include "src/server/request_scheduler.h"

#include <algorithm>

#include <gtest/gtest.h>

namespace alaya {
namespace {

struct SchedulerFixture {
  ModelConfig model = ModelConfig::Tiny();
  WindowConfig window{8, 16};
  CostModel cost;

  RequestScheduler Make(RequestSchedulerOptions options) {
    return RequestScheduler(model, window, cost, options);
  }

  static ServingRequest MakeRequest(size_t prompt_tokens, size_t steps) {
    ServingRequest r;
    r.prompt.resize(prompt_tokens);
    for (size_t i = 0; i < prompt_tokens; ++i) r.prompt[i] = static_cast<int32_t>(i);
    r.max_new_tokens = steps;
    r.fill_step = [](size_t, uint32_t, float*, float*, float*) {};
    return r;
  }
};

TEST(RequestSchedulerTest, EstimateCountsPrefillTokensInMemory) {
  SchedulerFixture fx;
  RequestScheduler sched = fx.Make({});
  const ServingRequest req = fx.MakeRequest(/*prompt_tokens=*/200, /*steps=*/4);

  // Full reuse: only window + decoded tail are device-resident.
  const AdmissionEstimate full = sched.Estimate(req, /*reused_prefix=*/200);
  EXPECT_EQ(full.prefill_tokens, 0u);
  EXPECT_EQ(full.prefill_step_gpu_seconds, 0.0);
  EXPECT_EQ(full.prefill_total_gpu_seconds, 0.0);
  const size_t window_tokens = WindowCache(fx.window).Size(204);
  EXPECT_EQ(full.gpu_bytes,
            std::max(window_tokens, size_t{4}) * fx.model.KvBytesPerToken());

  // No reuse: the entire prompt prefills into session-local KV and stays on
  // device — the footprint covers every token.
  const AdmissionEstimate none = sched.Estimate(req, /*reused_prefix=*/0);
  EXPECT_EQ(none.prefill_tokens, 200u);
  EXPECT_EQ(none.gpu_bytes, 204u * fx.model.KvBytesPerToken());
  EXPECT_GT(none.gpu_bytes, full.gpu_bytes);
  EXPECT_GT(none.prefill_total_gpu_seconds, 0.0);

  // Partial reuse sits in between, proportional to the unmatched suffix.
  const AdmissionEstimate half = sched.Estimate(req, /*reused_prefix=*/100);
  EXPECT_EQ(half.prefill_tokens, 100u);
  EXPECT_GT(half.gpu_bytes, full.gpu_bytes);
  EXPECT_LT(half.gpu_bytes, none.gpu_bytes);
  EXPECT_LT(half.prefill_total_gpu_seconds, none.prefill_total_gpu_seconds);
}

TEST(RequestSchedulerTest, PrefillStepSecondsCappedByChunk) {
  SchedulerFixture fx;
  RequestSchedulerOptions small, large;
  small.prefill_chunk_tokens = 4;
  large.prefill_chunk_tokens = 64;
  RequestScheduler sched_small = fx.Make(small);
  RequestScheduler sched_large = fx.Make(large);
  const ServingRequest req = fx.MakeRequest(48, 2);

  const AdmissionEstimate e_small = sched_small.Estimate(req, 0);
  const AdmissionEstimate e_large = sched_large.Estimate(req, 0);
  // Total projected prefill latency is chunking-independent...
  EXPECT_DOUBLE_EQ(e_small.prefill_total_gpu_seconds,
                   e_large.prefill_total_gpu_seconds);
  // ...but the per-engine-step contribution scales with the chunk (capped at
  // the actual number of prefill tokens: 48 < 64).
  EXPECT_DOUBLE_EQ(e_small.prefill_step_gpu_seconds * (48.0 / 4.0),
                   e_large.prefill_step_gpu_seconds);
  EXPECT_GT(e_large.EffectiveStepSeconds(), e_small.EffectiveStepSeconds());
}

TEST(RequestSchedulerTest, EffectiveStepSecondsIsWorstPhase) {
  AdmissionEstimate e;
  e.step_gpu_seconds = 2.0;
  e.prefill_step_gpu_seconds = 5.0;
  EXPECT_DOUBLE_EQ(e.EffectiveStepSeconds(), 5.0);
  e.prefill_step_gpu_seconds = 0.5;
  EXPECT_DOUBLE_EQ(e.EffectiveStepSeconds(), 2.0);
}

TEST(RequestSchedulerTest, PrefixProbeDrivesEnqueueEstimate) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefix_probe = [](std::span<const int32_t> tokens) {
    return tokens.size() / 2;  // Pretend half of every prompt is stored.
  };
  RequestScheduler sched = fx.Make(options);
  auto id = sched.Enqueue(fx.MakeRequest(100, 2));
  ASSERT_TRUE(id.ok());
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 1u);
  EXPECT_EQ(admitted[0].estimate.prefill_tokens, 50u);
}

TEST(RequestSchedulerTest, NoProbeAssumesFullPrefill) {
  SchedulerFixture fx;
  RequestScheduler sched = fx.Make({});
  const AdmissionEstimate e = sched.Estimate(fx.MakeRequest(100, 2));
  EXPECT_EQ(e.prefill_tokens, 100u);
}

TEST(RequestSchedulerTest, PrefillFootprintRejectedAtEnqueue) {
  SchedulerFixture fx;
  const ServingRequest req = fx.MakeRequest(200, 4);

  // Budget sized for the full-reuse footprint only.
  RequestSchedulerOptions options;
  RequestScheduler probe_free = fx.Make(options);
  options.gpu_budget_bytes = probe_free.Estimate(req, /*reused_prefix=*/200).gpu_bytes;

  // Without reuse information the prompt is assumed to fully prefill, and
  // that footprint can never fit: fail fast at the front door.
  RequestScheduler pessimistic = fx.Make(options);
  auto rejected = pessimistic.Enqueue(fx.MakeRequest(200, 4));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kNeverFits);

  // With a probe reporting the prompt fully stored, the same request fits.
  options.prefix_probe = [](std::span<const int32_t> tokens) { return tokens.size(); };
  RequestScheduler informed = fx.Make(options);
  EXPECT_TRUE(informed.Enqueue(fx.MakeRequest(200, 4)).ok());
}

TEST(RequestSchedulerTest, PrefillTimeBlocksCoAdmissionUnderTpotSlo) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefill_chunk_tokens = 32;
  // Probe: prompts of >= 100 tokens are unmatched (heavy prefill), shorter
  // ones fully stored.
  options.prefix_probe = [](std::span<const int32_t> tokens) {
    return tokens.size() >= 100 ? 0 : tokens.size();
  };

  // Calibrate the SLO: two decode-only requests fit together, but a decode
  // request + the prefill-heavy request's chunk time does not.
  RequestScheduler calibrate = fx.Make(options);
  const AdmissionEstimate decode_only =
      calibrate.Estimate(fx.MakeRequest(50, 4), 50);
  const AdmissionEstimate prefill_heavy =
      calibrate.Estimate(fx.MakeRequest(400, 4), 0);
  ASSERT_GT(prefill_heavy.prefill_step_gpu_seconds,
            prefill_heavy.step_gpu_seconds);
  options.tpot_slo_seconds = decode_only.EffectiveStepSeconds() * 2 +
                             prefill_heavy.step_gpu_seconds;
  ASSERT_LT(options.tpot_slo_seconds, decode_only.EffectiveStepSeconds() +
                                          prefill_heavy.EffectiveStepSeconds());

  RequestScheduler sched = fx.Make(options);
  ASSERT_TRUE(sched.Enqueue(fx.MakeRequest(50, 4)).ok());     // Decode-only.
  auto heavy_id = sched.Enqueue(fx.MakeRequest(400, 4));      // Prefill-heavy.
  ASSERT_TRUE(heavy_id.ok());
  ASSERT_TRUE(sched.Enqueue(fx.MakeRequest(50, 4)).ok());     // Decode-only.

  // First round: the decode request is admitted; the prefill-heavy one would
  // blow the per-step budget while it prefills, so it queues (and, FIFO, so
  // does everything behind it).
  auto first = sched.Admit();
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0].estimate.prefill_tokens, 0u);
  EXPECT_EQ(sched.queued(), 2u);

  // Once the decoding session finishes, the prefill-heavy request runs — on
  // its own: its projected chunk time exceeds what the SLO leaves for a
  // companion, so the trailing decode request keeps waiting.
  sched.Release(first[0].id);
  auto second = sched.Admit();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(second[0].id, heavy_id.value());
  EXPECT_EQ(sched.queued(), 1u);

  sched.Release(second[0].id);
  EXPECT_EQ(sched.Admit().size(), 1u);
  EXPECT_EQ(sched.queued(), 0u);
}

TEST(RequestSchedulerTest, UpdateReservationReanchorsToActualMatch) {
  // The enqueue-time probe is a TOCTOU estimate: the store can change before
  // admission (guaranteed under background Store). The engine re-estimates at
  // session-creation time and calls UpdateReservation so reserved bytes and
  // step-seconds track the reuse the session really got.
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  // Probe promises full reuse at enqueue...
  options.prefix_probe = [](std::span<const int32_t> tokens) { return tokens.size(); };
  RequestScheduler sched = fx.Make(options);
  const ServingRequest req = fx.MakeRequest(/*prompt_tokens=*/200, /*steps=*/4);

  auto id = sched.Enqueue(fx.MakeRequest(200, 4));
  ASSERT_TRUE(id.ok());
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 1u);
  const AdmissionEstimate promised = admitted[0].estimate;
  EXPECT_EQ(promised.prefill_tokens, 0u);
  EXPECT_EQ(sched.reserved_gpu_bytes(), promised.gpu_bytes);

  // ...but by admit time the matching context is gone: the session actually
  // has to prefill everything. The reservation must grow to the real footprint.
  const AdmissionEstimate actual = sched.Estimate(req, /*reused_prefix=*/0);
  ASSERT_GT(actual.gpu_bytes, promised.gpu_bytes);
  sched.UpdateReservation(admitted[0].id, actual);
  EXPECT_EQ(sched.reserved_gpu_bytes(), actual.gpu_bytes);
  EXPECT_DOUBLE_EQ(sched.reserved_step_seconds(), actual.EffectiveStepSeconds());

  // Release returns exactly the updated reservation — no divergence leaks.
  sched.Release(admitted[0].id);
  EXPECT_EQ(sched.reserved_gpu_bytes(), 0u);
  EXPECT_NEAR(sched.reserved_step_seconds(), 0.0, 1e-15);

  // Unknown ids are a no-op (the request may have already been released).
  sched.UpdateReservation(9999, actual);
  EXPECT_EQ(sched.reserved_gpu_bytes(), 0u);
}

TEST(RequestSchedulerTest, DeadlineHandlesZeroAndAstronomicalBudgets) {
  SchedulerFixture fx;
  RequestScheduler sched = fx.Make({});
  const auto far_future =
      std::chrono::steady_clock::now() + std::chrono::hours(24 * 365);

  ServingRequest none = fx.MakeRequest(10, 2);  // deadline_seconds == 0.
  ASSERT_TRUE(sched.Enqueue(std::move(none)).ok());
  ServingRequest small = fx.MakeRequest(10, 2);
  small.deadline_seconds = 0.5;
  ASSERT_TRUE(sched.Enqueue(std::move(small)).ok());
  // Astronomical budgets would overflow the clock's integer duration if cast
  // naively (UB wrapping into the past -> instant expiry); they must behave
  // as "no deadline" instead.
  ServingRequest huge = fx.MakeRequest(10, 2);
  huge.deadline_seconds = 1e12;
  ASSERT_TRUE(sched.Enqueue(std::move(huge)).ok());

  // The default policy admits the finite-deadline request first (EDF within
  // the class); restore arrival order so the indices below stay meaningful.
  auto admitted = sched.Admit();
  std::sort(admitted.begin(), admitted.end(),
            [](const auto& a, const auto& b) { return a.id < b.id; });
  ASSERT_EQ(admitted.size(), 3u);
  EXPECT_GT(admitted[0].Deadline(), far_future);  // None.
  EXPECT_LT(admitted[1].Deadline(), far_future);  // Real, finite.
  EXPECT_GT(admitted[1].Deadline(), std::chrono::steady_clock::now());
  EXPECT_GT(admitted[2].Deadline(), far_future);  // Clamped, never expired.
  // Nothing expires at enqueue horizon: the queue-side sweep agrees.
  EXPECT_TRUE(sched.RemoveQueuedExpired(std::chrono::steady_clock::now()).empty());
}

TEST(RequestSchedulerTest, ReleaseRestoresPrefillAwareReservation) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.tpot_slo_seconds = 1e9;  // Irrelevantly large; just track sums.
  RequestScheduler sched = fx.Make(options);

  auto a = sched.Enqueue(fx.MakeRequest(120, 3));  // Fully prefills (no probe).
  auto b = sched.Enqueue(fx.MakeRequest(40, 3));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto admitted = sched.Admit();
  ASSERT_EQ(admitted.size(), 2u);

  const double expected_seconds = admitted[0].estimate.EffectiveStepSeconds() +
                                  admitted[1].estimate.EffectiveStepSeconds();
  const uint64_t expected_bytes =
      admitted[0].estimate.gpu_bytes + admitted[1].estimate.gpu_bytes;
  EXPECT_DOUBLE_EQ(sched.reserved_step_seconds(), expected_seconds);
  EXPECT_EQ(sched.reserved_gpu_bytes(), expected_bytes);

  // The running sum accumulates (a + b) - a - b style floating-point residue;
  // compare with a tolerance far below any real per-step estimate.
  sched.Release(admitted[0].id);
  EXPECT_NEAR(sched.reserved_step_seconds(),
              admitted[1].estimate.EffectiveStepSeconds(), 1e-15);
  sched.Release(admitted[1].id);
  EXPECT_NEAR(sched.reserved_step_seconds(), 0.0, 1e-15);
  EXPECT_EQ(sched.reserved_gpu_bytes(), 0u);
}

// --- Step planning (continuous batching): the per-step token budget funds
// --- decode first, then deals chunks to prefilling sessions FIFO, with a
// --- forward-progress floor for the head prefiller.

TEST(RequestSchedulerTest, PlanStepUnlimitedBudgetGrantsFullChunks) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefill_chunk_tokens = 16;
  RequestScheduler sched = fx.Make(options);  // step_token_budget = 0.

  const size_t remaining[] = {40, 9, 0};
  const RequestScheduler::StepPlan plan = sched.PlanStep(3, remaining);
  EXPECT_EQ(plan.decode_tokens, 3u);
  ASSERT_EQ(plan.chunks.size(), 3u);
  EXPECT_EQ(plan.chunks[0], 16u);  // Chunk-capped.
  EXPECT_EQ(plan.chunks[1], 9u);   // Need-capped.
  EXPECT_EQ(plan.chunks[2], 0u);   // Nothing left to prefill.
  EXPECT_GT(plan.budget_left, 1u << 20);  // Effectively unlimited.
}

TEST(RequestSchedulerTest, PlanStepBudgetFundsDecodeFirstThenPrefillFifo) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefill_chunk_tokens = 8;
  options.step_token_budget = 16;
  RequestScheduler sched = fx.Make(options);

  // 6 decoders cost 6 tokens; 10 left fund the head prefiller's full chunk
  // (8) and leave the second with the 2-token remainder.
  const size_t remaining[] = {32, 32, 32};
  const RequestScheduler::StepPlan plan = sched.PlanStep(6, remaining);
  EXPECT_EQ(plan.decode_tokens, 6u);
  ASSERT_EQ(plan.chunks.size(), 3u);
  EXPECT_EQ(plan.chunks[0], 8u);
  EXPECT_EQ(plan.chunks[1], 2u);
  EXPECT_EQ(plan.chunks[2], 0u);
  EXPECT_EQ(plan.budget_left, 0u);
}

TEST(RequestSchedulerTest, PlanStepFloorsHeadPrefillerWhenDecodeSaturates) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefill_chunk_tokens = 8;
  options.step_token_budget = 4;
  options.min_prefill_tokens = 2;
  RequestScheduler sched = fx.Make(options);

  // Decode alone eats the whole budget, but the head prefiller still gets its
  // floor — otherwise a full decode batch would livelock every prefill.
  const size_t remaining[] = {32, 32};
  const RequestScheduler::StepPlan plan = sched.PlanStep(10, remaining);
  EXPECT_EQ(plan.chunks[0], 2u);
  EXPECT_EQ(plan.chunks[1], 0u);
  EXPECT_EQ(plan.budget_left, 0u);
}

TEST(RequestSchedulerTest, GrantChunkDrawsFromUnspentBudgetWithoutFloor) {
  SchedulerFixture fx;
  RequestSchedulerOptions options;
  options.prefill_chunk_tokens = 8;
  options.step_token_budget = 32;
  RequestScheduler sched = fx.Make(options);

  size_t budget_left = 10;
  EXPECT_EQ(sched.GrantChunk(32, &budget_left), 8u);  // Chunk-capped.
  EXPECT_EQ(budget_left, 2u);
  EXPECT_EQ(sched.GrantChunk(32, &budget_left), 2u);  // Budget-capped.
  EXPECT_EQ(budget_left, 0u);
  // A dry budget grants nothing — no floor for mid-step admissions; the next
  // step's PlanStep funds them.
  EXPECT_EQ(sched.GrantChunk(32, &budget_left), 0u);
  EXPECT_EQ(budget_left, 0u);
}

TEST(RequestSchedulerTest, EstimateChunkCappedByStepBudget) {
  SchedulerFixture fx;
  RequestSchedulerOptions wide, tight;
  wide.prefill_chunk_tokens = 64;
  tight.prefill_chunk_tokens = 64;
  tight.step_token_budget = 8;
  RequestScheduler sched_wide = fx.Make(wide);
  RequestScheduler sched_tight = fx.Make(tight);

  // A step budget below the chunk size shrinks the modeled per-step prefill
  // cost: admission reasons about the chunks the engine will actually run.
  const ServingRequest r = SchedulerFixture::MakeRequest(256, 4);
  EXPECT_LT(sched_tight.Estimate(r).prefill_step_gpu_seconds,
            sched_wide.Estimate(r).prefill_step_gpu_seconds);
}

}  // namespace
}  // namespace alaya
