#include "src/storage/vector_file_system.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alaya {
namespace {

VectorFileSystem::Options MemVfs() {
  VectorFileSystem::Options o;
  o.in_memory = true;
  o.file.dim = 16;
  o.file.max_degree = 8;
  o.file.block_size = 512;
  return o;
}

TEST(VectorFileSystemTest, CreateAndGet) {
  VectorFileSystem vfs(MemVfs());
  auto r = vfs.CreateFile("layer0_head0");
  ASSERT_TRUE(r.ok());
  EXPECT_NE(vfs.GetFile("layer0_head0"), nullptr);
  EXPECT_EQ(vfs.GetFile("nope"), nullptr);
  EXPECT_EQ(vfs.num_files(), 1u);
}

TEST(VectorFileSystemTest, PersistAndLoadHeadWithGraph) {
  VectorFileSystem vfs(MemVfs());
  Rng rng(1);
  VectorSet keys(16);
  std::vector<float> v(16);
  for (int i = 0; i < 40; ++i) {
    rng.FillGaussian(v.data(), 16);
    keys.Append(v.data());
  }
  AdjacencyGraph graph(40, 8);
  for (uint32_t u = 0; u + 1 < 40; ++u) {
    graph.AddEdge(u, u + 1);
    graph.AddEdge(u + 1, u);
  }
  ASSERT_TRUE(vfs.PersistHead("l1_h0", keys.View(), &graph).ok());

  VectorSet loaded_keys;
  AdjacencyGraph loaded_graph;
  ASSERT_TRUE(vfs.LoadHead("l1_h0", &loaded_keys, &loaded_graph).ok());
  ASSERT_EQ(loaded_keys.size(), 40u);
  for (uint32_t i = 0; i < 40; ++i) {
    for (int j = 0; j < 16; ++j) {
      EXPECT_EQ(loaded_keys.Vec(i)[j], keys.Vec(i)[j]);
    }
  }
  ASSERT_EQ(loaded_graph.size(), 40u);
  for (uint32_t u = 0; u < 40; ++u) {
    auto a = graph.Neighbors(u);
    auto b = loaded_graph.Neighbors(u);
    ASSERT_EQ(a.size(), b.size()) << "node " << u;
    for (size_t j = 0; j < a.size(); ++j) EXPECT_EQ(a[j], b[j]);
  }
}

TEST(VectorFileSystemTest, PersistWithoutGraph) {
  VectorFileSystem vfs(MemVfs());
  VectorSet keys(16);
  std::vector<float> v(16, 3.f);
  keys.Append(v.data());
  ASSERT_TRUE(vfs.PersistHead("solo", keys.View(), nullptr).ok());
  VectorSet loaded;
  ASSERT_TRUE(vfs.LoadHead("solo", &loaded, nullptr).ok());
  EXPECT_EQ(loaded.size(), 1u);
}

TEST(VectorFileSystemTest, PosixModeRoundtrip) {
  VectorFileSystem::Options o = MemVfs();
  o.in_memory = false;
  o.dir = testing::TempDir() + "/alaya_vfs_test";
  VectorFileSystem vfs(o);
  Rng rng(2);
  VectorSet keys(16);
  std::vector<float> v(16);
  for (int i = 0; i < 25; ++i) {
    rng.FillGaussian(v.data(), 16);
    keys.Append(v.data());
  }
  ASSERT_TRUE(vfs.PersistHead("disk_head", keys.View(), nullptr).ok());

  // A second VFS instance reopens the file from disk.
  VectorFileSystem vfs2(o);
  VectorSet loaded;
  ASSERT_TRUE(vfs2.LoadHead("disk_head", &loaded, nullptr).ok());
  EXPECT_EQ(loaded.size(), 25u);
  for (int j = 0; j < 16; ++j) EXPECT_EQ(loaded.Vec(24)[j], keys.Vec(24)[j]);
}

TEST(VectorFileSystemTest, SharedBufferManagerAcrossFiles) {
  VectorFileSystem vfs(MemVfs());
  VectorSet keys(16);
  std::vector<float> v(16, 1.f);
  for (int i = 0; i < 10; ++i) keys.Append(v.data());
  ASSERT_TRUE(vfs.PersistHead("a", keys.View(), nullptr).ok());
  ASSERT_TRUE(vfs.PersistHead("b", keys.View(), nullptr).ok());
  VectorSet la, lb;
  ASSERT_TRUE(vfs.LoadHead("a", &la, nullptr).ok());
  ASSERT_TRUE(vfs.LoadHead("b", &lb, nullptr).ok());
  EXPECT_GT(vfs.buffer_manager().stats().hits + vfs.buffer_manager().stats().misses,
            0u);
}

}  // namespace
}  // namespace alaya
