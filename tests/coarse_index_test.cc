#include "src/index/coarse_index.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace alaya {
namespace {

/// 10 blocks of 16 tokens; block 3 is filled with a known direction so it must
/// be selected first.
VectorSet MakePlantedSet(size_t d, uint32_t block_size, uint32_t hot_block) {
  VectorSet set(d);
  Rng rng(42);
  std::vector<float> v(d);
  for (uint32_t i = 0; i < block_size * 10; ++i) {
    rng.FillGaussian(v.data(), d);
    NormalizeInPlace(v.data(), d);
    Scale(v.data(), d, 0.1f);
    if (i / block_size == hot_block) {
      v[0] += 5.f;  // Strongly aligned with e0.
    }
    set.Append(v.data());
  }
  return set;
}

class CoarseRepTest : public ::testing::TestWithParam<BlockRepKind> {};

TEST_P(CoarseRepTest, SelectsPlantedBlock) {
  const uint32_t kBlock = 16;
  VectorSet set = MakePlantedSet(24, kBlock, 3);
  CoarseIndexOptions opts;
  opts.block_size = kBlock;
  opts.rep_kind = GetParam();
  CoarseIndex index(set.View(), opts);
  EXPECT_EQ(index.num_blocks(), 10u);

  std::vector<float> q(24, 0.f);
  q[0] = 1.f;
  SearchResult res;
  ASSERT_TRUE(index.SearchTopK(q.data(), TopKParams{kBlock, 0}, &res).ok());
  ASSERT_EQ(res.hits.size(), kBlock);
  for (const auto& h : res.hits) {
    EXPECT_GE(h.id, 3u * kBlock);
    EXPECT_LT(h.id, 4u * kBlock);
  }
}

INSTANTIATE_TEST_SUITE_P(Reps, CoarseRepTest,
                         ::testing::Values(BlockRepKind::kMean, BlockRepKind::kMinMax,
                                           BlockRepKind::kSalient));

TEST(CoarseIndexTest, MinMaxScoreIsUpperBound) {
  VectorSet set = MakePlantedSet(16, 8, 0);
  CoarseIndexOptions opts;
  opts.block_size = 8;
  opts.rep_kind = BlockRepKind::kMinMax;
  CoarseIndex index(set.View(), opts);
  Rng rng(7);
  std::vector<float> q(16);
  for (int trial = 0; trial < 20; ++trial) {
    rng.FillGaussian(q.data(), 16);
    for (size_t b = 0; b < index.num_blocks(); ++b) {
      const float bound = index.BlockScore(q.data(), b);
      for (uint32_t i = 0; i < 8; ++i) {
        const uint32_t id = static_cast<uint32_t>(b * 8 + i);
        EXPECT_GE(bound + 1e-4f, Dot(q.data(), set.Vec(id), 16))
            << "block " << b << " token " << id;
      }
    }
  }
}

TEST(CoarseIndexTest, KRoundsUpToBlockGranularity) {
  VectorSet set = MakePlantedSet(16, 8, 0);
  CoarseIndexOptions opts;
  opts.block_size = 8;
  CoarseIndex index(set.View(), opts);
  std::vector<float> q(16, 1.f);
  SearchResult res;
  ASSERT_TRUE(index.SearchTopK(q.data(), TopKParams{10, 0}, &res).ok());
  EXPECT_EQ(res.hits.size(), 16u);  // ceil(10/8) = 2 blocks.
}

TEST(CoarseIndexTest, DiprNotSupported) {
  VectorSet set = MakePlantedSet(16, 8, 0);
  CoarseIndexOptions opts;
  opts.block_size = 8;
  CoarseIndex index(set.View(), opts);
  std::vector<float> q(16, 1.f);
  SearchResult res;
  DiprParams params;
  Status s = index.SearchDipr(q.data(), params, &res);
  EXPECT_EQ(s.code(), StatusCode::kNotSupported);
  EXPECT_EQ(index.SearchDiprFiltered(q.data(), params, IdFilter{}, &res).code(),
            StatusCode::kNotSupported);
}

TEST(CoarseIndexTest, FilterSkipsBlocksBeyondPrefix) {
  VectorSet set = MakePlantedSet(16, 8, 9);  // Hot block is the last one.
  CoarseIndexOptions opts;
  opts.block_size = 8;
  CoarseIndex index(set.View(), opts);
  std::vector<float> q(16, 0.f);
  q[0] = 1.f;
  IdFilter filter;
  filter.prefix_len = 40;  // Blocks 0..4 only.
  SearchResult res;
  ASSERT_TRUE(index.SearchTopKFiltered(q.data(), TopKParams{8, 0}, filter, &res).ok());
  for (const auto& h : res.hits) EXPECT_LT(h.id, 40u);
}

TEST(CoarseIndexTest, GpuMemoryAccounting) {
  MemoryTracker gpu(MemoryTier::kGpu);
  VectorSet set = MakePlantedSet(16, 8, 0);
  {
    CoarseIndexOptions opts;
    opts.block_size = 8;
    opts.gpu_memory = &gpu;
    opts.bytes_per_token_kv = 64;
    CoarseIndex index(set.View(), opts);
    EXPECT_EQ(gpu.current(), index.MemoryBytes() + 80u * 64u);
  }
  EXPECT_EQ(gpu.current(), 0u);  // Freed on destruction.
}

TEST(CoarseIndexTest, ShortFinalBlock) {
  VectorSet set(8);
  Rng rng(1);
  std::vector<float> v(8);
  for (int i = 0; i < 20; ++i) {  // 20 tokens, block 16 -> 2 blocks (16 + 4).
    rng.FillGaussian(v.data(), 8);
    set.Append(v.data());
  }
  CoarseIndexOptions opts;
  opts.block_size = 16;
  CoarseIndex index(set.View(), opts);
  EXPECT_EQ(index.num_blocks(), 2u);
  std::vector<float> q(8, 1.f);
  SearchResult res;
  ASSERT_TRUE(index.SearchTopK(q.data(), TopKParams{32, 0}, &res).ok());
  EXPECT_EQ(res.hits.size(), 20u);
}

}  // namespace
}  // namespace alaya
