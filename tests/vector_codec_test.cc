// Codec round-trip error bounds, scalar-vs-dispatched kernel equivalence
// (including dims that are not a multiple of any SIMD width), and the
// decode-free int8 scoring identity.
#include "src/common/vector_codec.h"

#include <cmath>
#include <random>
#include <vector>

#include "gtest/gtest.h"

namespace alaya {
namespace {

std::vector<float> RandomVec(size_t n, uint32_t seed, float scale = 1.f) {
  std::mt19937 rng(seed);
  std::normal_distribution<float> nd(0.f, scale);
  std::vector<float> v(n);
  for (auto& x : v) x = nd(rng);
  return v;
}

// Dims straddling every kernel boundary: scalar tails, one partial SIMD lane,
// exact multiples of 4/8/16, and odd primes.
const size_t kDims[] = {0, 1, 2, 3, 4, 5, 7, 8, 9, 13, 15, 16, 17, 31, 32, 64, 67, 128};

TEST(Fp16Test, RoundTripsHalfValuesExactly) {
  // float -> half is lossy, but half -> float -> half must be the identity
  // for every finite half (the fp16 spill round-trip invariant).
  for (uint32_t h = 0; h < 65536; ++h) {
    const float f = Fp16ToFloat(static_cast<uint16_t>(h));
    if (std::isnan(f)) continue;  // NaN payloads may canonicalize.
    if (std::isinf(f)) {
      EXPECT_EQ(Fp16FromFloat(f), static_cast<uint16_t>(h));
      continue;
    }
    EXPECT_EQ(Fp16FromFloat(f), static_cast<uint16_t>(h)) << "h=" << h;
  }
}

TEST(Fp16Test, EncodeRelativeErrorBound) {
  // binary16 has a 10-bit mantissa: RNE keeps normals within 2^-11 relative.
  const auto v = RandomVec(4096, 11, 3.f);
  for (float x : v) {
    const float back = Fp16ToFloat(Fp16FromFloat(x));
    EXPECT_LE(std::fabs(back - x), std::fabs(x) * (1.f / 2048.f) + 1e-7f) << x;
  }
}

TEST(Fp16Test, EdgeCases) {
  EXPECT_EQ(Fp16FromFloat(0.f), 0);
  EXPECT_EQ(Fp16FromFloat(-0.f), 0x8000);
  EXPECT_EQ(Fp16FromFloat(65504.f), 0x7BFF);          // Largest finite half.
  EXPECT_EQ(Fp16FromFloat(65520.f), 0x7C00);          // Rounds to +inf.
  EXPECT_EQ(Fp16FromFloat(1e30f), 0x7C00);            // Overflow.
  EXPECT_EQ(Fp16FromFloat(-1e30f), 0xFC00);
  EXPECT_EQ(Fp16FromFloat(1e-30f), 0);                // Underflow to zero.
  EXPECT_TRUE(std::isnan(Fp16ToFloat(Fp16FromFloat(NAN))));
  EXPECT_EQ(Fp16ToFloat(0x3C00), 1.f);
  EXPECT_EQ(Fp16ToFloat(0x0001), std::ldexp(1.f, -24));  // Smallest subnormal.
}

TEST(Int8CodecTest, RoundTripErrorBound) {
  // Affine int8 over [min, max]: quantization error <= scale / 2 per element.
  for (uint32_t seed : {1u, 2u, 3u}) {
    auto data = RandomVec(64 * 32, seed, 2.f);
    auto orig = data;
    CodecParams p;
    QuantizeRows(data.data(), 64, 32, VectorCodec::kInt8, &p);
    EXPECT_GT(p.scale, 0.f);
    for (size_t i = 0; i < data.size(); ++i) {
      EXPECT_LE(std::fabs(data[i] - orig[i]), p.scale * 0.5f + 1e-5f) << i;
    }
  }
}

TEST(Int8CodecTest, OnGridReencodeIsExact) {
  // Re-encoding already-on-grid data with the SAME params must reproduce the
  // exact codes — the property the spill/restore path relies on for
  // bit-identical round trips.
  auto data = RandomVec(50 * 64, 7, 1.5f);
  CodecParams p;
  QuantizeRows(data.data(), 50, 64, VectorCodec::kInt8, &p);
  const auto grid = data;  // Already on-grid.
  CodedVectorSet first, second;
  first.EncodeWithParams({grid.data(), 50, 64}, VectorCodec::kInt8, p);
  QuantizeRows(data.data(), 50, 64, VectorCodec::kInt8, &p, /*reuse_params=*/true);
  EXPECT_EQ(data, grid);  // QuantizeRows is idempotent on-grid.
  second.EncodeWithParams({data.data(), 50, 64}, VectorCodec::kInt8, p);
  for (uint32_t i = 0; i < 50; ++i) {
    const int8_t* a = first.I8Row(i);
    const int8_t* b = second.I8Row(i);
    for (size_t j = 0; j < 64; ++j) ASSERT_EQ(a[j], b[j]);
  }
}

TEST(Int8CodecTest, DegenerateRangeIsStable) {
  std::vector<float> flat(128, 3.25f);
  CodecParams p;
  QuantizeRows(flat.data(), 4, 32, VectorCodec::kInt8, &p);
  for (float x : flat) EXPECT_FLOAT_EQ(x, 3.25f);
}

TEST(KernelDispatchTest, ScalarMatchesDispatchedWithinUlps) {
  const KernelOps& s = ScalarKernels();
  const KernelOps& k = Kernels();
  for (size_t d : kDims) {
    const auto a = RandomVec(d, 100 + static_cast<uint32_t>(d));
    const auto b = RandomVec(d, 200 + static_cast<uint32_t>(d));
    const float tol = 1e-5f * (1.f + static_cast<float>(d));
    EXPECT_NEAR(s.dot(a.data(), b.data(), d), k.dot(a.data(), b.data(), d), tol)
        << "dot d=" << d << " level=" << k.level;
    EXPECT_NEAR(s.l2sq(a.data(), b.data(), d), k.l2sq(a.data(), b.data(), d), tol)
        << "l2sq d=" << d;

    std::vector<uint16_t> f16(d);
    for (size_t i = 0; i < d; ++i) f16[i] = Fp16FromFloat(b[i]);
    EXPECT_NEAR(s.dot_f16(a.data(), f16.data(), d),
                k.dot_f16(a.data(), f16.data(), d), tol)
        << "dot_f16 d=" << d;

    std::vector<int8_t> i8(d);
    for (size_t i = 0; i < d; ++i) i8[i] = static_cast<int8_t>((i * 37) % 251 - 125);
    EXPECT_NEAR(s.dot_i8(a.data(), i8.data(), d), k.dot_i8(a.data(), i8.data(), d),
                tol * 128.f)
        << "dot_i8 d=" << d;

    // In-place ops: same outputs to within one rounding each.
    auto ys = a, yk = a;
    s.axpy(ys.data(), b.data(), d, 0.37f);
    k.axpy(yk.data(), b.data(), d, 0.37f);
    for (size_t i = 0; i < d; ++i) EXPECT_NEAR(ys[i], yk[i], 1e-6f);
    auto zs = a, zk = a;
    s.scale(zs.data(), d, -1.7f);
    k.scale(zk.data(), d, -1.7f);
    for (size_t i = 0; i < d; ++i) EXPECT_EQ(zs[i], zk[i]);  // One mul: exact.
  }
}

TEST(KernelDispatchTest, ZeroDimIsValid) {
  const KernelOps& k = Kernels();
  EXPECT_EQ(k.dot(nullptr, nullptr, 0), 0.f);
  EXPECT_EQ(k.l2sq(nullptr, nullptr, 0), 0.f);
  EXPECT_EQ(k.dot_f16(nullptr, nullptr, 0), 0.f);
  EXPECT_EQ(k.dot_i8(nullptr, nullptr, 0), 0.f);
  k.axpy(nullptr, nullptr, 0, 1.f);
  k.scale(nullptr, 0, 2.f);
  k.matvec(nullptr, 0, 8, nullptr, nullptr);
}

TEST(QueryScorerTest, Int8DecodeFreeDotMatchesDecodedDot) {
  // dot(q, dec(c)) == scale * (dot_i8(q, c) - zp * sum(q)) to rounding.
  const size_t n = 40, d = 67;  // d deliberately not a SIMD multiple.
  auto data = RandomVec(n * d, 5, 2.f);
  CodecParams p;
  QuantizeRows(data.data(), n, d, VectorCodec::kInt8, &p);
  CodedVectorSet coded;
  coded.EncodeWithParams({data.data(), n, d}, VectorCodec::kInt8, p);
  const auto q = RandomVec(d, 6);

  const ScoringView view({data.data(), n, d}, &coded, 8);
  ASSERT_TRUE(view.coded_active());
  const QueryScorer scorer(view, q.data());
  for (uint32_t i = 0; i < n; ++i) {
    // Exact == coded here because the fp32 rows are already on-grid.
    const float exact = scorer.ExactScore(i);
    EXPECT_NEAR(scorer.Score(i), exact, 2e-3f * (1.f + std::fabs(exact))) << i;
  }
}

TEST(QueryScorerTest, Fp16ScoringAndDecodeRow) {
  const size_t n = 16, d = 31;
  const auto data = RandomVec(n * d, 9);
  CodedVectorSet coded;
  coded.Encode({data.data(), n, d}, VectorCodec::kFp16);
  EXPECT_EQ(coded.size(), n);
  std::vector<float> dec(d);
  const auto q = RandomVec(d, 10);
  const QueryScorer scorer(ScoringView({data.data(), n, d}, &coded, 4), q.data());
  for (uint32_t i = 0; i < n; ++i) {
    coded.DecodeRow(i, dec.data());
    float ref = 0.f;
    for (size_t j = 0; j < d; ++j) {
      EXPECT_LE(std::fabs(dec[j] - data[i * d + j]),
                std::fabs(data[i * d + j]) / 2048.f + 1e-7f);
      ref += q[j] * dec[j];
    }
    EXPECT_NEAR(scorer.Score(i), ref, 1e-4f * (1.f + std::fabs(ref)));
  }
}

TEST(ScoringViewTest, Fp32SidecarIsInert) {
  const size_t n = 8, d = 16;
  const auto data = RandomVec(n * d, 12);
  CodedVectorSet coded;
  coded.Encode({data.data(), n, d}, VectorCodec::kFp32);
  EXPECT_TRUE(coded.empty());
  const ScoringView view({data.data(), n, d}, &coded, 8);
  EXPECT_FALSE(view.coded_active());
  const auto q = RandomVec(d, 13);
  const QueryScorer scorer(view, q.data());
  for (uint32_t i = 0; i < n; ++i) {
    EXPECT_EQ(scorer.Score(i), scorer.ExactScore(i));  // Bit-identical.
  }
  std::vector<ScoredId> hits{{0, 1.f}, {1, 2.f}};
  EXPECT_EQ(RerankTopHits(view, q.data(), &hits), 0u);  // No-op, order kept.
  EXPECT_EQ(hits[0].id, 0u);
}

TEST(RerankTest, RerankRestoresExactOrdering) {
  const size_t n = 64, d = 32;
  auto data = RandomVec(n * d, 21);
  const auto exact = data;
  CodecParams p;
  QuantizeRows(data.data(), n, d, VectorCodec::kInt8, &p);
  CodedVectorSet coded;
  coded.EncodeWithParams({data.data(), n, d}, VectorCodec::kInt8, p);
  const auto q = RandomVec(d, 22);

  // Score all ids coded, then rerank the full list against the EXACT
  // (pre-quantization) fp32 rows: the head must come back in exact order.
  const ScoringView view({exact.data(), n, d}, &coded, n);
  const QueryScorer scorer(view, q.data());
  std::vector<ScoredId> hits;
  for (uint32_t i = 0; i < n; ++i) hits.push_back({i, scorer.Score(i)});
  SortByScoreDesc(&hits);
  EXPECT_EQ(RerankTopHits(view, q.data(), &hits), n);
  for (size_t i = 1; i < hits.size(); ++i) {
    EXPECT_GE(hits[i - 1].score, hits[i].score);
  }
  for (const auto& h : hits) {
    EXPECT_EQ(h.score, Kernels().dot(q.data(), exact.data() + h.id * d, d));
  }
}

TEST(BatchedCodedTest, MatVecAndMultiQueryMatchScorer) {
  const size_t n = 33, d = 17, nq = 3;
  auto data = RandomVec(n * d, 31);
  CodecParams p;
  QuantizeRows(data.data(), n, d, VectorCodec::kInt8, &p);
  CodedVectorSet coded;
  coded.EncodeWithParams({data.data(), n, d}, VectorCodec::kInt8, p);
  const auto qs = RandomVec(nq * d, 32);

  std::vector<float> batched(nq * n);
  MultiQueryDotCoded(coded, qs.data(), nq, batched.data());
  for (size_t j = 0; j < nq; ++j) {
    std::vector<float> single(n);
    MatVecDotCoded(coded, qs.data() + j * d, single.data());
    const QueryScorer scorer(ScoringView({data.data(), n, d}, &coded, 0),
                             qs.data() + j * d);
    for (uint32_t i = 0; i < n; ++i) {
      EXPECT_EQ(batched[j * n + i], single[i]);
      EXPECT_EQ(single[i], scorer.Score(i));
    }
  }
}

TEST(CodecNamesTest, ParseAndFormat) {
  VectorCodec c;
  EXPECT_TRUE(ParseVectorCodec("fp32", &c));
  EXPECT_EQ(c, VectorCodec::kFp32);
  EXPECT_TRUE(ParseVectorCodec("fp16", &c));
  EXPECT_EQ(c, VectorCodec::kFp16);
  EXPECT_TRUE(ParseVectorCodec("int8", &c));
  EXPECT_EQ(c, VectorCodec::kInt8);
  EXPECT_FALSE(ParseVectorCodec("int4", &c));
  EXPECT_STREQ(VectorCodecName(VectorCodec::kInt8), "int8");
  EXPECT_EQ(CodecBytesPerScalar(VectorCodec::kFp32), 4u);
  EXPECT_EQ(CodecBytesPerScalar(VectorCodec::kFp16), 2u);
  EXPECT_EQ(CodecBytesPerScalar(VectorCodec::kInt8), 1u);
  EXPECT_NE(KernelDispatchLevel(), nullptr);
}

}  // namespace
}  // namespace alaya
