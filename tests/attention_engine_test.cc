#include "src/attention/attention_engine.h"

#include <gtest/gtest.h>

#include <numeric>

#include "src/common/rng.h"

namespace alaya {
namespace {

struct KvFixture {
  VectorSet keys;
  VectorSet values;
  KvFixture(size_t n, size_t d, uint64_t seed) : keys(d), values(d) {
    Rng rng(seed);
    std::vector<float> v(d);
    for (size_t i = 0; i < n; ++i) {
      rng.FillGaussian(v.data(), d);
      keys.Append(v.data());
      rng.FillGaussian(v.data(), d);
      values.Append(v.data());
    }
  }
};

TEST(AttentionEngineTest, SparseWithAllIdsEqualsFull) {
  const size_t n = 100, d = 16;
  KvFixture kv(n, d, 1);
  Rng rng(2);
  std::vector<float> q(d);
  rng.FillGaussian(q.data(), d);

  std::vector<float> full(d), sparse(d);
  FullAttentionHead(q.data(), kv.keys.View(), kv.values.View(), n, full.data());
  std::vector<uint32_t> ids(n);
  std::iota(ids.begin(), ids.end(), 0);
  SparseAttentionHead(q.data(), kv.keys.View(), kv.values.View(), ids, sparse.data());
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(full[i], sparse[i], 1e-5);
}

TEST(AttentionEngineTest, StatsCountTokens) {
  const size_t n = 50, d = 8;
  KvFixture kv(n, d, 3);
  std::vector<float> q(d, 1.f), out(d);
  AttentionStats stats;
  FullAttentionHead(q.data(), kv.keys.View(), kv.values.View(), n, out.data(), &stats);
  EXPECT_EQ(stats.tokens_attended, n);
  EXPECT_GT(stats.flops, 0u);

  AttentionStats sp;
  std::vector<uint32_t> ids = {1, 5, 7};
  SparseAttentionHead(q.data(), kv.keys.View(), kv.values.View(), ids, out.data(), &sp);
  EXPECT_EQ(sp.tokens_attended, 3u);
}

TEST(AttentionEngineTest, ExactScoresSumToOne) {
  const size_t n = 64, d = 8;
  KvFixture kv(n, d, 4);
  std::vector<float> q(d, 0.5f), scores(n);
  ExactAttentionScores(q.data(), kv.keys.View(), n, scores.data());
  float sum = std::accumulate(scores.begin(), scores.end(), 0.f);
  EXPECT_NEAR(sum, 1.f, 1e-4);
}

TEST(AttentionEngineTest, RecoveryRatioProperties) {
  const size_t n = 64, d = 8;
  KvFixture kv(n, d, 5);
  std::vector<float> q(d, 0.5f);
  // Empty set -> 0; full set -> 1; monotone in set size.
  std::vector<uint32_t> none;
  EXPECT_NEAR(RecoveryRatio(q.data(), kv.keys.View(), n, none), 0.f, 1e-6);
  std::vector<uint32_t> all(n);
  std::iota(all.begin(), all.end(), 0);
  EXPECT_NEAR(RecoveryRatio(q.data(), kv.keys.View(), n, all), 1.f, 1e-4);
  std::vector<uint32_t> half(all.begin(), all.begin() + n / 2);
  const float r_half = RecoveryRatio(q.data(), kv.keys.View(), n, half);
  EXPECT_GT(r_half, 0.f);
  EXPECT_LT(r_half, 1.f);
}

TEST(AttentionEngineTest, RecoveryIgnoresOutOfRangeIds) {
  const size_t n = 16, d = 4;
  KvFixture kv(n, d, 6);
  std::vector<float> q(d, 1.f);
  std::vector<uint32_t> ids = {0, 1, 999};
  const float r = RecoveryRatio(q.data(), kv.keys.View(), n, ids);
  std::vector<uint32_t> valid = {0, 1};
  EXPECT_FLOAT_EQ(r, RecoveryRatio(q.data(), kv.keys.View(), n, valid));
}

TEST(AttentionEngineTest, PartitionRangeVsIdsEquivalent) {
  const size_t n = 40, d = 8;
  KvFixture kv(n, d, 7);
  std::vector<float> q(d, 0.3f);
  const float scale = 1.0f / std::sqrt(static_cast<float>(d));

  PartialAttention by_range(d), by_ids(d);
  KvPartition range_part{kv.keys.View(), kv.values.View(), {}, 10, 30};
  AccumulatePartition(q.data(), range_part, scale, &by_range);
  std::vector<uint32_t> ids;
  for (uint32_t i = 10; i < 30; ++i) ids.push_back(i);
  KvPartition id_part{kv.keys.View(), kv.values.View(), ids, 0, 0};
  AccumulatePartition(q.data(), id_part, scale, &by_ids);

  std::vector<float> a(d), b(d);
  by_range.Finalize(a.data());
  by_ids.Finalize(b.data());
  for (size_t i = 0; i < d; ++i) EXPECT_NEAR(a[i], b[i], 1e-6);
}

}  // namespace
}  // namespace alaya
