#include "src/index/graph_search.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace alaya {
namespace {

/// A ring graph over points on a line: vec(i) = (i, 0, ...). Query favors the
/// largest coordinate, so beam search must walk the ring to the end.
struct RingFixture {
  VectorSet keys;
  AdjacencyGraph graph;

  explicit RingFixture(uint32_t n) : keys(4), graph(n, 2) {
    std::vector<float> v(4, 0.f);
    for (uint32_t i = 0; i < n; ++i) {
      v[0] = static_cast<float>(i);
      keys.Append(v.data());
      if (i > 0) {
        graph.AddEdge(i - 1, i);
        graph.AddEdge(i, i - 1);
      }
    }
  }
};

TEST(GraphSearchTest, BeamWalksToGlobalMax) {
  RingFixture fx(100);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  SearchResult res = GraphBeamSearch(fx.graph, fx.keys.View(), 0, q.data(), 8);
  ASSERT_FALSE(res.hits.empty());
  EXPECT_EQ(res.hits[0].id, 99u);
  EXPECT_GT(res.stats.hops, 50u);  // Had to traverse the chain.
}

TEST(GraphSearchTest, BeamReturnsSortedTopEf) {
  RingFixture fx(50);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  SearchResult res = GraphBeamSearch(fx.graph, fx.keys.View(), 0, q.data(), 5);
  ASSERT_EQ(res.hits.size(), 5u);
  for (size_t i = 0; i < 5; ++i) {
    EXPECT_EQ(res.hits[i].id, 49u - i);
  }
}

TEST(GraphSearchTest, GraphTopKTruncates) {
  RingFixture fx(50);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  SearchResult res = GraphTopK(fx.graph, fx.keys.View(), 0, q.data(), TopKParams{3, 10});
  EXPECT_EQ(res.hits.size(), 3u);
}

TEST(GraphSearchTest, GreedyDescendReachesLocalMax) {
  RingFixture fx(30);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  SearchStats stats;
  const uint32_t end = GreedyDescend(fx.graph, fx.keys.View(), 0, q.data(), &stats);
  EXPECT_EQ(end, 29u);
  EXPECT_GT(stats.dist_comps, 0u);
}

TEST(GraphSearchTest, EmptyGraphAndZeroEf) {
  AdjacencyGraph g;
  VectorSetView empty;
  SearchResult res = GraphBeamSearch(g, empty, 0, nullptr, 8);
  EXPECT_TRUE(res.hits.empty());
  RingFixture fx(10);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  res = GraphBeamSearch(fx.graph, fx.keys.View(), 0, q.data(), 0);
  EXPECT_TRUE(res.hits.empty());
}

TEST(GraphSearchTest, ReusedVisitedSetIsReset) {
  RingFixture fx(40);
  std::vector<float> q = {1.f, 0.f, 0.f, 0.f};
  VisitedSet visited;
  SearchResult r1 = GraphBeamSearch(fx.graph, fx.keys.View(), 0, q.data(), 4, &visited);
  SearchResult r2 = GraphBeamSearch(fx.graph, fx.keys.View(), 0, q.data(), 4, &visited);
  ASSERT_EQ(r1.hits.size(), r2.hits.size());
  for (size_t i = 0; i < r1.hits.size(); ++i) EXPECT_EQ(r1.hits[i].id, r2.hits[i].id);
}

TEST(AdjacencyGraphTest, AddEdgeRules) {
  AdjacencyGraph g(4, 2);
  EXPECT_TRUE(g.AddEdge(0, 1));
  EXPECT_FALSE(g.AddEdge(0, 1));  // Duplicate.
  EXPECT_FALSE(g.AddEdge(0, 0));  // Self-loop.
  EXPECT_TRUE(g.AddEdge(0, 2));
  EXPECT_FALSE(g.AddEdge(0, 3));  // Full.
  EXPECT_EQ(g.degree(0), 2u);
  EXPECT_EQ(g.EdgeCount(), 2u);
}

TEST(AdjacencyGraphTest, SetNeighborsTruncatesAtCap) {
  AdjacencyGraph g(5, 2);
  g.SetNeighbors(0, {1, 2, 3, 4});
  EXPECT_EQ(g.degree(0), 2u);
  auto nbrs = g.Neighbors(0);
  EXPECT_EQ(nbrs[0], 1u);
  EXPECT_EQ(nbrs[1], 2u);
}

TEST(AdjacencyGraphTest, AddNodeGrows) {
  AdjacencyGraph g(2, 3);
  const uint32_t id = g.AddNode();
  EXPECT_EQ(id, 2u);
  EXPECT_EQ(g.size(), 3u);
  EXPECT_TRUE(g.AddEdge(2, 0));
}

}  // namespace
}  // namespace alaya
