// P² streaming quantile sketch (Jain & Chlamtac 1985) vs exact quantiles on
// seeded traces — the replacement for the serving snapshot's first-N TTFT
// sample buffers. The contract under test: exact nearest-rank below five
// observations, bounded-error streaming estimate after, at any stream length
// (no silent freeze once a buffer would have filled).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "src/common/quantile_sketch.h"
#include "src/common/rng.h"

namespace alaya {
namespace {

/// Nearest-rank percentile of an unsorted sample (the bench's definition).
double ExactPercentile(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank = std::min(
      v.size() - 1,
      static_cast<size_t>(q * static_cast<double>(v.size() - 1) + 0.5));
  return v[rank];
}

/// Classic nearest-rank order statistic, ceil(q*n) 1-based — the small-n
/// contract P2QuantileSketch::Value documents.
double NearestRank(std::vector<double> v, double q) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(v.size())));
  return v[std::min(v.size(), std::max<size_t>(rank, 1)) - 1];
}

TEST(QuantileSketchTest, EmptySketchReportsZero) {
  P2QuantileSketch s(0.5);
  EXPECT_EQ(s.Value(), 0.0);
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.quantile(), 0.5);
}

TEST(QuantileSketchTest, ExactBelowFiveObservations) {
  // With n < 5 the sketch must return the exact nearest-rank order statistic,
  // not an interpolation — small classes (a priority class that saw two
  // requests) report true values.
  P2QuantileSketch p50(0.5);
  P2QuantileSketch p99(0.99);
  const std::vector<double> obs = {0.7, 0.1, 0.9, 0.3};
  std::vector<double> seen;
  for (const double x : obs) {
    p50.Add(x);
    p99.Add(x);
    seen.push_back(x);
    EXPECT_DOUBLE_EQ(p50.Value(), NearestRank(seen, 0.5)) << seen.size();
    EXPECT_DOUBLE_EQ(p99.Value(), NearestRank(seen, 0.99)) << seen.size();
  }
}

TEST(QuantileSketchTest, TracksUniformTraceWithinBoundedError) {
  // 20k seeded uniform draws: p50 and p99 estimates must land within a small
  // absolute error of the exact sample quantiles (uniform [0, 1) makes the
  // bound directly interpretable).
  Rng rng(0xABCDEF01);
  P2QuantileSketch p50(0.5);
  P2QuantileSketch p99(0.99);
  std::vector<double> trace;
  for (size_t i = 0; i < 20000; ++i) {
    const double x = rng.Uniform();
    trace.push_back(x);
    p50.Add(x);
    p99.Add(x);
  }
  EXPECT_EQ(p50.count(), trace.size());
  EXPECT_NEAR(p50.Value(), ExactPercentile(trace, 0.5), 0.02);
  EXPECT_NEAR(p99.Value(), ExactPercentile(trace, 0.99), 0.02);
  EXPECT_GT(p99.Value(), p50.Value());
}

TEST(QuantileSketchTest, TracksSkewedTraceRelativeError) {
  // TTFT-shaped trace: a lognormal-ish body with a heavy tail (squared
  // exponential of a gaussian), where first-N sampling goes wrong in practice
  // — the tail arrives late, after a fixed buffer froze. Relative-error bound
  // against the exact quantiles of the full trace.
  Rng rng(0x5EEDF00D);
  P2QuantileSketch p50(0.5);
  P2QuantileSketch p99(0.99);
  std::vector<double> trace;
  for (size_t i = 0; i < 50000; ++i) {
    float g = 0;
    rng.FillGaussian(&g, 1);
    const double x = std::exp(static_cast<double>(g));
    trace.push_back(x);
    p50.Add(x);
    p99.Add(x);
  }
  const double exact50 = ExactPercentile(trace, 0.5);
  const double exact99 = ExactPercentile(trace, 0.99);
  EXPECT_NEAR(p50.Value(), exact50, 0.05 * exact50);
  EXPECT_NEAR(p99.Value(), exact99, 0.10 * exact99);
}

TEST(QuantileSketchTest, SortedAndReversedFeedsAgree) {
  // Order robustness: the same multiset fed ascending and descending must
  // yield estimates near the same exact quantile (the streaming markers must
  // not depend on a favorable arrival order).
  std::vector<double> vals;
  for (size_t i = 0; i < 1000; ++i) {
    vals.push_back(static_cast<double>(i) / 1000.0);
  }
  P2QuantileSketch asc(0.9), desc(0.9);
  for (const double v : vals) asc.Add(v);
  for (auto it = vals.rbegin(); it != vals.rend(); ++it) desc.Add(*it);
  const double exact = ExactPercentile(vals, 0.9);
  EXPECT_NEAR(asc.Value(), exact, 0.03);
  EXPECT_NEAR(desc.Value(), exact, 0.03);
}

}  // namespace
}  // namespace alaya
