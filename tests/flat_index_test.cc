#include "src/index/flat_index.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace alaya {
namespace {

VectorSet MakeRandomSet(size_t n, size_t d, uint64_t seed) {
  VectorSet set(d);
  Rng rng(seed);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    set.Append(v.data());
  }
  return set;
}

std::vector<ScoredId> BruteTopK(VectorSetView view, const float* q, size_t k) {
  std::vector<ScoredId> all;
  for (uint32_t i = 0; i < view.n; ++i) {
    all.push_back({i, Dot(q, view.Vec(i), view.d)});
  }
  SortByScoreDesc(&all);
  if (all.size() > k) all.resize(k);
  return all;
}

TEST(FlatIndexTest, TopKIsExact) {
  VectorSet set = MakeRandomSet(500, 32, 1);
  FlatIndex index(set.View());
  Rng rng(2);
  std::vector<float> q(32);
  for (int trial = 0; trial < 10; ++trial) {
    rng.FillGaussian(q.data(), 32);
    SearchResult res;
    ASSERT_TRUE(index.SearchTopK(q.data(), TopKParams{10, 0}, &res).ok());
    auto expected = BruteTopK(set.View(), q.data(), 10);
    ASSERT_EQ(res.hits.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(res.hits[i].id, expected[i].id);
    }
    EXPECT_EQ(res.stats.dist_comps, 500u);
  }
}

TEST(FlatIndexTest, DiprMatchesDefinition) {
  // Definition 3: return exactly { k : q.k >= max - beta }.
  VectorSet set = MakeRandomSet(300, 16, 3);
  FlatIndex index(set.View());
  Rng rng(4);
  std::vector<float> q(16);
  rng.FillGaussian(q.data(), 16);
  for (float beta : {0.5f, 2.0f, 5.0f}) {
    SearchResult res;
    DiprParams params;
    params.beta = beta;
    ASSERT_TRUE(index.SearchDipr(q.data(), params, &res).ok());
    // Compute reference.
    float max_ip = -1e30f;
    for (uint32_t i = 0; i < 300; ++i) {
      max_ip = std::max(max_ip, Dot(q.data(), set.Vec(i), 16));
    }
    size_t expected = 0;
    for (uint32_t i = 0; i < 300; ++i) {
      if (Dot(q.data(), set.Vec(i), 16) >= max_ip - beta) ++expected;
    }
    EXPECT_EQ(res.hits.size(), expected) << "beta=" << beta;
    // Hits are sorted descending and all pass the threshold.
    for (size_t i = 1; i < res.hits.size(); ++i) {
      EXPECT_GE(res.hits[i - 1].score, res.hits[i].score);
    }
    for (const auto& h : res.hits) EXPECT_GE(h.score, max_ip - beta);
  }
}

TEST(FlatIndexTest, DiprBetaZeroReturnsArgmaxOnly) {
  VectorSet set = MakeRandomSet(100, 8, 5);
  FlatIndex index(set.View());
  std::vector<float> q(8, 1.f);
  SearchResult res;
  DiprParams params;
  params.beta = 0.f;
  ASSERT_TRUE(index.SearchDipr(q.data(), params, &res).ok());
  ASSERT_GE(res.hits.size(), 1u);  // Ties possible but at least the max.
  auto top = BruteTopK(set.View(), q.data(), 1);
  EXPECT_EQ(res.hits[0].id, top[0].id);
}

TEST(FlatIndexTest, DiprGrowsWithBeta) {
  VectorSet set = MakeRandomSet(400, 16, 6);
  FlatIndex index(set.View());
  std::vector<float> q(16, 0.5f);
  size_t prev = 0;
  for (float beta : {0.f, 1.f, 2.f, 4.f, 8.f, 1000.f}) {
    SearchResult res;
    DiprParams params;
    params.beta = beta;
    ASSERT_TRUE(index.SearchDipr(q.data(), params, &res).ok());
    EXPECT_GE(res.hits.size(), prev);
    prev = res.hits.size();
  }
  EXPECT_EQ(prev, 400u);  // Huge beta returns everything.
}

TEST(FlatIndexTest, DiprMaxTokensCaps) {
  VectorSet set = MakeRandomSet(200, 8, 7);
  FlatIndex index(set.View());
  std::vector<float> q(8, 1.f);
  SearchResult res;
  DiprParams params;
  params.beta = 1000.f;
  params.max_tokens = 13;
  ASSERT_TRUE(index.SearchDipr(q.data(), params, &res).ok());
  EXPECT_EQ(res.hits.size(), 13u);
}

TEST(FlatIndexTest, NegativeBetaRejected) {
  VectorSet set = MakeRandomSet(10, 8, 8);
  FlatIndex index(set.View());
  std::vector<float> q(8, 1.f);
  SearchResult res;
  DiprParams params;
  params.beta = -1.f;
  EXPECT_FALSE(index.SearchDipr(q.data(), params, &res).ok());
}

TEST(FlatIndexTest, FilterRestrictsIds) {
  VectorSet set = MakeRandomSet(100, 8, 9);
  FlatIndex index(set.View());
  std::vector<float> q(8, 1.f);
  IdFilter filter;
  filter.prefix_len = 40;
  SearchResult res;
  ASSERT_TRUE(index.SearchTopKFiltered(q.data(), TopKParams{100, 0}, filter, &res).ok());
  EXPECT_EQ(res.hits.size(), 40u);
  for (const auto& h : res.hits) EXPECT_LT(h.id, 40u);

  DiprParams params;
  params.beta = 1e6f;
  ASSERT_TRUE(index.SearchDiprFiltered(q.data(), params, filter, &res).ok());
  EXPECT_EQ(res.hits.size(), 40u);
}

TEST(FlatIndexTest, EmptyAndNullEdges) {
  VectorSet set(8);
  FlatIndex index(set.View());
  std::vector<float> q(8, 1.f);
  SearchResult res;
  EXPECT_TRUE(index.SearchTopK(q.data(), TopKParams{5, 0}, &res).ok());
  EXPECT_TRUE(res.hits.empty());
  DiprParams params;
  EXPECT_TRUE(index.SearchDipr(q.data(), params, &res).ok());
  EXPECT_TRUE(res.hits.empty());
  EXPECT_FALSE(index.SearchTopK(nullptr, TopKParams{5, 0}, &res).ok());
  EXPECT_FALSE(index.SearchTopK(q.data(), TopKParams{5, 0}, nullptr).ok());
}

TEST(FlatIndexTest, RebindSeesGrownSet) {
  VectorSet set = MakeRandomSet(10, 8, 10);
  FlatIndex index(set.View());
  EXPECT_EQ(index.size(), 10u);
  Rng rng(11);
  std::vector<float> v(8);
  rng.FillGaussian(v.data(), 8);
  set.Append(v.data());
  index.Rebind(set.View());
  EXPECT_EQ(index.size(), 11u);
  EXPECT_EQ(index.index_class(), IndexClass::kFlat);
  EXPECT_EQ(index.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace alaya
