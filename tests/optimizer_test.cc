#include "src/query/optimizer.h"

#include <gtest/gtest.h>

namespace alaya {
namespace {

QueryContext LongContext() {
  QueryContext ctx;
  ctx.context_length = 100000;
  ctx.gpu_budget_bytes = 0;
  ctx.layer_id = 5;
  return ctx;
}

TEST(OptimizerTest, ShortContextUsesFullAttention) {
  RuleBasedOptimizer opt;
  QueryContext ctx;
  ctx.context_length = 1000;
  QueryPlan plan = opt.Plan(ctx);
  EXPECT_EQ(plan.query, QueryClass::kFullAttention);
  EXPECT_FALSE(plan.filter.enabled());
}

TEST(OptimizerTest, ThresholdBoundaryIsInclusive) {
  OptimizerOptions oo;
  oo.short_context_threshold = 4096;
  RuleBasedOptimizer opt(oo);
  QueryContext ctx;
  ctx.context_length = 4096;
  EXPECT_EQ(opt.Plan(ctx).query, QueryClass::kFullAttention);
  ctx.context_length = 4097;
  EXPECT_NE(opt.Plan(ctx).query, QueryClass::kFullAttention);
}

TEST(OptimizerTest, HighBudgetPicksCoarseTopK) {
  RuleBasedOptimizer opt;
  QueryContext ctx = LongContext();
  ctx.gpu_budget_bytes = 1ull << 40;  // Plenty.
  QueryPlan plan = opt.Plan(ctx);
  EXPECT_EQ(plan.query, QueryClass::kTopK);
  EXPECT_EQ(plan.index, IndexClass::kCoarse);
}

TEST(OptimizerTest, BudgetBoundaryUsesCoarseBytesPerToken) {
  OptimizerOptions oo;
  oo.coarse_bytes_per_token = 512;
  RuleBasedOptimizer opt(oo);
  QueryContext ctx = LongContext();
  ctx.context_length = 10000;
  ctx.gpu_budget_bytes = 512ull * 10000;
  EXPECT_EQ(opt.Plan(ctx).index, IndexClass::kCoarse);
  ctx.gpu_budget_bytes -= 1;
  EXPECT_NE(opt.Plan(ctx).index, IndexClass::kCoarse);
}

TEST(OptimizerTest, TightBudgetLayerZeroUsesFlatDipr) {
  RuleBasedOptimizer opt;
  QueryContext ctx = LongContext();
  ctx.layer_id = 0;
  QueryPlan plan = opt.Plan(ctx);
  EXPECT_EQ(plan.query, QueryClass::kDipr);
  EXPECT_EQ(plan.index, IndexClass::kFlat);
}

TEST(OptimizerTest, TightBudgetDeepLayersUseFineDipr) {
  RuleBasedOptimizer opt;
  for (int layer : {1, 2, 15, 31}) {
    QueryContext ctx = LongContext();
    ctx.layer_id = layer;
    QueryPlan plan = opt.Plan(ctx);
    EXPECT_EQ(plan.query, QueryClass::kDipr) << "layer " << layer;
    EXPECT_EQ(plan.index, IndexClass::kFine) << "layer " << layer;
  }
}

TEST(OptimizerTest, PartialReuseAddsFilter) {
  RuleBasedOptimizer opt;
  QueryContext ctx = LongContext();
  ctx.partial_reuse = true;
  ctx.reused_prefix_len = 40000;
  QueryPlan plan = opt.Plan(ctx);
  EXPECT_TRUE(plan.filter.enabled());
  EXPECT_EQ(plan.filter.prefix_len, 40000u);
  // Filter composes with both branches.
  ctx.gpu_budget_bytes = 1ull << 40;
  plan = opt.Plan(ctx);
  EXPECT_TRUE(plan.filter.enabled());
  EXPECT_EQ(plan.index, IndexClass::kCoarse);
}

TEST(OptimizerTest, ShortContextIgnoresPartialReuseFilter) {
  RuleBasedOptimizer opt;
  QueryContext ctx;
  ctx.context_length = 100;
  ctx.partial_reuse = true;
  ctx.reused_prefix_len = 50;
  QueryPlan plan = opt.Plan(ctx);
  EXPECT_EQ(plan.query, QueryClass::kFullAttention);
}

TEST(OptimizerTest, ExplainStrings) {
  RuleBasedOptimizer opt;
  QueryContext ctx;
  ctx.context_length = 10;
  EXPECT_EQ(opt.Plan(ctx).Explain(), "full_attention");
  ctx = LongContext();
  ctx.layer_id = 3;
  EXPECT_NE(opt.Plan(ctx).Explain().find("dipr"), std::string::npos);
  EXPECT_NE(opt.Plan(ctx).Explain().find("fine"), std::string::npos);
  ctx.partial_reuse = true;
  ctx.reused_prefix_len = 7;
  EXPECT_NE(opt.Plan(ctx).Explain().find("attribute_filter"), std::string::npos);
}

TEST(QueryTypesTest, SupportMatrixMatchesTable4) {
  // Coarse: Top-k + Filter only. Fine/Flat: Top-k, Filter, DIPR.
  EXPECT_TRUE(IndexSupportsQuery(IndexClass::kCoarse, QueryClass::kTopK));
  EXPECT_FALSE(IndexSupportsQuery(IndexClass::kCoarse, QueryClass::kDipr));
  EXPECT_TRUE(IndexSupportsQuery(IndexClass::kFine, QueryClass::kTopK));
  EXPECT_TRUE(IndexSupportsQuery(IndexClass::kFine, QueryClass::kDipr));
  EXPECT_TRUE(IndexSupportsQuery(IndexClass::kFlat, QueryClass::kDipr));
  EXPECT_TRUE(IndexSupportsFilter(IndexClass::kCoarse));
  EXPECT_TRUE(IndexSupportsFilter(IndexClass::kFine));
  EXPECT_TRUE(IndexSupportsFilter(IndexClass::kFlat));
  EXPECT_FALSE(IndexSupportsQuery(IndexClass::kFine, QueryClass::kFullAttention));
}

TEST(QueryTypesTest, Names) {
  EXPECT_STREQ(QueryClassName(QueryClass::kTopK), "topk");
  EXPECT_STREQ(QueryClassName(QueryClass::kDipr), "dipr");
  EXPECT_STREQ(QueryClassName(QueryClass::kFullAttention), "full_attention");
  EXPECT_STREQ(IndexClassName(IndexClass::kCoarse), "coarse");
}

}  // namespace
}  // namespace alaya
