#include "src/attention/window_cache.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"

namespace alaya {
namespace {

TEST(WindowCacheTest, ContainsInitialAndRecent) {
  WindowCache wc(WindowConfig{4, 8});
  const size_t n = 100;
  EXPECT_TRUE(wc.Contains(0, n));
  EXPECT_TRUE(wc.Contains(3, n));
  EXPECT_FALSE(wc.Contains(4, n));
  EXPECT_FALSE(wc.Contains(91, n));
  EXPECT_TRUE(wc.Contains(92, n));
  EXPECT_TRUE(wc.Contains(99, n));
}

TEST(WindowCacheTest, SizeMatchesCollectedIds) {
  for (size_t n : {2u, 4u, 10u, 12u, 13u, 100u}) {
    WindowCache wc(WindowConfig{4, 8});
    std::vector<uint32_t> ids;
    wc.CollectIds(n, &ids);
    EXPECT_EQ(ids.size(), wc.Size(n)) << "n=" << n;
    // No duplicates, all in range, and each satisfies Contains().
    std::set<uint32_t> s(ids.begin(), ids.end());
    EXPECT_EQ(s.size(), ids.size());
    for (uint32_t id : ids) {
      EXPECT_LT(id, n);
      EXPECT_TRUE(wc.Contains(id, n));
    }
  }
}

TEST(WindowCacheTest, ShortContextIsFullyWindowed) {
  WindowCache wc(WindowConfig{128, 512});
  EXPECT_EQ(wc.Size(100), 100u);
  std::vector<uint32_t> ids;
  wc.CollectIds(100, &ids);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(WindowCacheTest, MaxWindowInnerProductFindsPlantedMax) {
  const size_t d = 16, n = 200;
  VectorSet keys(d);
  Rng rng(1);
  std::vector<float> v(d);
  for (size_t i = 0; i < n; ++i) {
    rng.FillGaussian(v.data(), d);
    NormalizeInPlace(v.data(), d);
    keys.Append(v.data());
  }
  // Plant a huge key at position 1 (inside the initial window).
  std::vector<float> big(d, 0.f);
  big[0] = 100.f;
  std::copy(big.begin(), big.end(), keys.MutableVec(1));

  WindowCache wc(WindowConfig{4, 8});
  std::vector<float> q(d, 0.f);
  q[0] = 1.f;
  const float prior = wc.MaxWindowInnerProduct(q.data(), keys.View(), n);
  EXPECT_NEAR(prior, 100.f, 1e-3);
}

TEST(WindowCacheTest, GpuBytesScaleWithGeometry) {
  WindowCache wc(WindowConfig{128, 512});
  const uint64_t b1 = wc.GpuBytes(100000, 8, 128, 2);
  EXPECT_EQ(b1, 640ull * 8 * 128 * 2 * 2);
  EXPECT_EQ(wc.GpuBytes(100000, 8, 128, 4), 2 * b1);
}

TEST(WindowCacheTest, OverlappingInitialAndRecent) {
  // Context shorter than initial+recent: window covers everything exactly once.
  WindowCache wc(WindowConfig{10, 10});
  std::vector<uint32_t> ids;
  wc.CollectIds(15, &ids);
  std::set<uint32_t> s(ids.begin(), ids.end());
  EXPECT_EQ(s.size(), 15u);
  EXPECT_EQ(wc.Size(15), 15u);
}

}  // namespace
}  // namespace alaya
