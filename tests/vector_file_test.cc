#include "src/storage/vector_file.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "src/common/rng.h"

namespace alaya {
namespace {

VectorFileOptions SmallFile() {
  VectorFileOptions o;
  o.block_size = 512;
  o.dim = 16;
  o.max_degree = 8;
  return o;
}

TEST(VectorFileTest, AppendAndReadVectors) {
  auto file =
      VectorFile::Create(std::make_unique<MemIoBackend>(), SmallFile()).TakeValue();
  Rng rng(1);
  std::vector<std::vector<float>> vecs;
  for (int i = 0; i < 100; ++i) {
    std::vector<float> v(16);
    rng.FillGaussian(v.data(), 16);
    vecs.push_back(v);
    auto r = file->AppendVector(v.data());
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r.value(), static_cast<uint32_t>(i));
  }
  EXPECT_EQ(file->num_vectors(), 100u);
  std::vector<float> out(16);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(file->ReadVector(i, out.data()).ok());
    for (int j = 0; j < 16; ++j) EXPECT_EQ(out[j], vecs[i][j]);
  }
}

TEST(VectorFileTest, AdjacencyRoundtrip) {
  auto file =
      VectorFile::Create(std::make_unique<MemIoBackend>(), SmallFile()).TakeValue();
  std::vector<float> v(16, 1.f);
  for (int i = 0; i < 50; ++i) ASSERT_TRUE(file->AppendVector(v.data()).ok());

  std::vector<uint32_t> nbrs = {1, 5, 9, 13};
  ASSERT_TRUE(file->WriteAdjacency(3, nbrs).ok());
  std::vector<uint32_t> got;
  ASSERT_TRUE(file->ReadAdjacency(3, &got).ok());
  EXPECT_EQ(got, nbrs);
  // Unwritten nodes have empty adjacency.
  ASSERT_TRUE(file->ReadAdjacency(4, &got).ok());
  EXPECT_TRUE(got.empty());
}

TEST(VectorFileTest, AdjacencyDegreeCapped) {
  auto file =
      VectorFile::Create(std::make_unique<MemIoBackend>(), SmallFile()).TakeValue();
  std::vector<float> v(16, 1.f);
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(file->AppendVector(v.data()).ok());
  std::vector<uint32_t> too_many(20);
  for (uint32_t i = 0; i < 20; ++i) too_many[i] = i;
  ASSERT_TRUE(file->WriteAdjacency(0, too_many).ok());
  std::vector<uint32_t> got;
  ASSERT_TRUE(file->ReadAdjacency(0, &got).ok());
  EXPECT_EQ(got.size(), 8u);  // max_degree.
}

TEST(VectorFileTest, OutOfRangeRejected) {
  auto file =
      VectorFile::Create(std::make_unique<MemIoBackend>(), SmallFile()).TakeValue();
  std::vector<float> v(16, 1.f);
  ASSERT_TRUE(file->AppendVector(v.data()).ok());
  std::vector<float> out(16);
  EXPECT_FALSE(file->ReadVector(5, out.data()).ok());
  EXPECT_FALSE(file->WriteAdjacency(5, std::vector<uint32_t>{0}).ok());
  std::vector<uint32_t> nbrs;
  EXPECT_FALSE(file->ReadAdjacency(5, &nbrs).ok());
}

TEST(VectorFileTest, BlockSizeTooSmallRejected) {
  VectorFileOptions o;
  o.block_size = 64;
  o.dim = 64;  // 256 bytes per vector > 48-byte payload.
  auto r = VectorFile::Create(std::make_unique<MemIoBackend>(), o);
  EXPECT_FALSE(r.ok());
}

TEST(VectorFileTest, ReopenFromPosixFile) {
  const std::string path = testing::TempDir() + "/alaya_vf_test.vf";
  std::remove(path.c_str());
  Rng rng(2);
  std::vector<std::vector<float>> vecs;
  {
    auto backend = PosixIoBackend::Open(path, true).TakeValue();
    auto file = VectorFile::Create(std::move(backend), SmallFile()).TakeValue();
    for (int i = 0; i < 60; ++i) {
      std::vector<float> v(16);
      rng.FillGaussian(v.data(), 16);
      vecs.push_back(v);
      ASSERT_TRUE(file->AppendVector(v.data()).ok());
    }
    ASSERT_TRUE(file->WriteAdjacency(7, std::vector<uint32_t>{1, 2, 3}).ok());
    ASSERT_TRUE(file->Flush().ok());
  }
  {
    auto backend = PosixIoBackend::Open(path, false).TakeValue();
    auto r = VectorFile::Open(std::move(backend));
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    auto file = r.TakeValue();
    EXPECT_EQ(file->num_vectors(), 60u);
    EXPECT_EQ(file->dim(), 16u);
    std::vector<float> out(16);
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(file->ReadVector(i, out.data()).ok());
      for (int j = 0; j < 16; ++j) EXPECT_EQ(out[j], vecs[i][j]);
    }
    std::vector<uint32_t> nbrs;
    ASSERT_TRUE(file->ReadAdjacency(7, &nbrs).ok());
    EXPECT_EQ(nbrs, (std::vector<uint32_t>{1, 2, 3}));
  }
  std::remove(path.c_str());
}

TEST(VectorFileTest, OpenRejectsBadMagic) {
  auto backend = std::make_unique<MemIoBackend>();
  const std::string garbage(1024, 'g');
  ASSERT_TRUE(backend->Write(0, garbage.data(), garbage.size()).ok());
  auto r = VectorFile::Open(std::move(backend));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsCorruption());
}

TEST(VectorFileTest, BufferManagerCachesReads) {
  BufferManager::Options bo;
  bo.block_size = 512;
  bo.capacity_bytes = 64 * 512;
  BufferManager bm(bo);
  auto file = VectorFile::Create(std::make_unique<MemIoBackend>(), SmallFile(), &bm, 3)
                  .TakeValue();
  std::vector<float> v(16, 2.f), out(16);
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(file->AppendVector(v.data()).ok());
  const auto before = bm.stats();
  for (int i = 0; i < 30; ++i) ASSERT_TRUE(file->ReadVector(i, out.data()).ok());
  const auto after = bm.stats();
  EXPECT_GT(after.hits, before.hits);  // Blocks served from cache.
}

}  // namespace
}  // namespace alaya
