#include "src/core/context_serializer.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cstdlib>

#include "src/common/rng.h"
#include "src/query/diprs.h"

namespace alaya {
namespace {

struct SerializerFixture {
  ModelConfig model = ModelConfig::Tiny();  // dim 16; VFS files use dim 16.
  VectorFileSystem vfs;

  SerializerFixture() : vfs(MakeVfsOptions()) {}

  static VectorFileSystem::Options MakeVfsOptions() {
    VectorFileSystem::Options o;
    o.in_memory = true;
    o.file.dim = 16;
    o.file.max_degree = 32;
    o.file.block_size = 4096;
    return o;
  }

  std::unique_ptr<Context> MakeContext(size_t tokens, uint64_t seed,
                                       bool build_indices) {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    std::vector<int32_t> ids(tokens);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    for (size_t t = 0; t < tokens; ++t) ids[t] = static_cast<int32_t>(100 + t);
    auto ctx = std::make_unique<Context>(1, std::move(ids), std::move(kv));
    if (build_indices) {
      EXPECT_TRUE(ctx->BuildFineIndices(IndexBuildOptions{}, nullptr, nullptr).ok());
    }
    return ctx;
  }
};

TEST(ContextSerializerTest, RoundtripKvAndTokens) {
  SerializerFixture fx;
  auto original = fx.MakeContext(120, 1, /*build_indices=*/false);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx1").ok());

  auto loaded = ser.Load("ctx1", 7, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  EXPECT_EQ(ctx.id(), 7u);
  EXPECT_EQ(ctx.tokens(), original->tokens());
  EXPECT_EQ(ctx.kv().NumTokens(), 120u);
  EXPECT_FALSE(ctx.HasFineIndices());
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      for (uint32_t t = 0; t < 120; t += 17) {
        for (uint32_t j = 0; j < fx.model.head_dim; ++j) {
          EXPECT_EQ(ctx.kv().Keys(layer, h).Vec(t)[j],
                    original->kv().Keys(layer, h).Vec(t)[j]);
          EXPECT_EQ(ctx.kv().Values(layer, h).Vec(t)[j],
                    original->kv().Values(layer, h).Vec(t)[j]);
        }
      }
    }
  }
}

TEST(ContextSerializerTest, RoundtripWithFineIndices) {
  SerializerFixture fx;
  auto original = fx.MakeContext(200, 2, /*build_indices=*/true);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx2").ok());

  auto loaded = ser.Load("ctx2", 9, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  ASSERT_TRUE(ctx.HasFineIndices());

  // Adjacency restored exactly for every (layer, kv head).
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      const RoarGraph* a = original->FineIndex(layer, h * fx.model.GroupSize());
      const RoarGraph* b = ctx.FineIndex(layer, h * fx.model.GroupSize());
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_EQ(a->graph().size(), b->graph().size());
      for (uint32_t u = 0; u < a->graph().size(); u += 13) {
        auto na = a->graph().Neighbors(u);
        auto nb = b->graph().Neighbors(u);
        ASSERT_EQ(na.size(), nb.size()) << "node " << u;
        for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
      }
    }
  }

  // The restored index answers searches (smoke: DIPR runs and returns hits).
  const RoarGraph* fine = ctx.FineIndex(1, 0);
  std::vector<float> q(fx.model.head_dim, 0.5f);
  SearchResult res;
  ASSERT_TRUE(fine->SearchDipr(q.data(), DiprParams{1e6f, 16, 0}, &res).ok());
  EXPECT_GT(res.hits.size(), 0u);
}

TEST(ContextSerializerTest, RoundtripPreservesDeviceAndBuildStats) {
  // Spill/restore must not launder accounting: a context paged back in keeps
  // its placement and the (possibly expensive) build provenance it paid for,
  // otherwise eviction scoring and per-device schedulers see fresh-born state.
  SerializerFixture fx;
  auto original = fx.MakeContext(200, 4, /*build_indices=*/true);
  original->set_resident_device(1);
  IndexBuildStats stats = original->build_stats();
  stats.knn_wall_seconds = 1.25;
  stats.project_wall_seconds = 0.5;
  stats.modeled_gpu_seconds = 0.0625;
  stats.modeled_transfer_seconds = 0.03125;
  stats.reported_seconds = 2.75;
  // A value past 2^24 would be corrupted by a float cast; the manifest must
  // carry it bit-exactly.
  stats.index_bytes = (1ull << 33) + 12345;
  stats.num_indices = 4;
  stats.training_queries = 77;
  stats.extended_indices = 3;
  stats.reused_base_nodes = (1ull << 26) + 9;
  stats.inserted_suffix_nodes = 41;
  original->set_build_stats(stats);

  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx4").ok());

  // The manifest alone (warm-start path) exposes the snapshot without paying
  // for KV or adjacency loads.
  auto man = ser.LoadManifest("ctx4", fx.model);
  ASSERT_TRUE(man.ok()) << man.status().ToString();
  EXPECT_EQ(man.value().resident_device, 1);
  EXPECT_EQ(man.value().length, 200u);
  EXPECT_TRUE(man.value().has_fine);
  EXPECT_EQ(man.value().build_stats.index_bytes, stats.index_bytes);
  EXPECT_EQ(man.value().tokens, original->tokens());

  auto loaded = ser.Load("ctx4", 11, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  EXPECT_EQ(ctx.resident_device(), 1);
  EXPECT_TRUE(ctx.fine_indices_restored());  // Restored, not rebuilt.
  const IndexBuildStats& got = ctx.build_stats();
  EXPECT_EQ(got.knn_wall_seconds, stats.knn_wall_seconds);
  EXPECT_EQ(got.project_wall_seconds, stats.project_wall_seconds);
  EXPECT_EQ(got.modeled_gpu_seconds, stats.modeled_gpu_seconds);
  EXPECT_EQ(got.modeled_transfer_seconds, stats.modeled_transfer_seconds);
  EXPECT_EQ(got.reported_seconds, stats.reported_seconds);
  EXPECT_EQ(got.index_bytes, stats.index_bytes);
  EXPECT_EQ(got.num_indices, stats.num_indices);
  EXPECT_EQ(got.training_queries, stats.training_queries);
  EXPECT_EQ(got.extended_indices, stats.extended_indices);
  EXPECT_EQ(got.reused_base_nodes, stats.reused_base_nodes);
  EXPECT_EQ(got.inserted_suffix_nodes, stats.inserted_suffix_nodes);
}

TEST(ContextSerializerTest, QuantizedContextRoundTripsCodecState) {
  // An int8-quantized context persists a v3 manifest carrying the codec id and
  // per-(layer, head) scale/zero-point rows; the KV payload itself is the
  // on-grid fp32 data, so restore is bit-identical AND the restored cache
  // reports the same compressed DeployedBytes as the original.
  SerializerFixture fx;
  auto original = fx.MakeContext(120, 8, /*build_indices=*/false);
  original->mutable_kv().QuantizeInPlace(VectorCodec::kInt8);
  const size_t deployed = original->kv().DeployedBytes();
  ASSERT_EQ(original->kv().codec(), VectorCodec::kInt8);

  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctxq").ok());

  auto man = ser.LoadManifest("ctxq", fx.model);
  ASSERT_TRUE(man.ok()) << man.status().ToString();
  EXPECT_EQ(man.value().kv_codec, VectorCodec::kInt8);
  ASSERT_EQ(man.value().key_params.size(),
            size_t{fx.model.num_layers} * fx.model.num_kv_heads);

  auto loaded = ser.Load("ctxq", 13, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  EXPECT_EQ(ctx.kv().codec(), VectorCodec::kInt8);
  EXPECT_EQ(ctx.kv().DeployedBytes(), deployed);
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      EXPECT_EQ(ctx.kv().KeyParams(layer, h).scale,
                original->kv().KeyParams(layer, h).scale);
      EXPECT_EQ(ctx.kv().KeyParams(layer, h).zero_point,
                original->kv().KeyParams(layer, h).zero_point);
      EXPECT_EQ(ctx.kv().ValParams(layer, h).scale,
                original->kv().ValParams(layer, h).scale);
      for (uint32_t t = 0; t < 120; t += 17) {
        for (uint32_t j = 0; j < fx.model.head_dim; ++j) {
          EXPECT_EQ(ctx.kv().Keys(layer, h).Vec(t)[j],
                    original->kv().Keys(layer, h).Vec(t)[j]);
          EXPECT_EQ(ctx.kv().Values(layer, h).Vec(t)[j],
                    original->kv().Values(layer, h).Vec(t)[j]);
        }
      }
    }
  }
}

TEST(ContextSerializerTest, GeometryMismatchRejected) {
  SerializerFixture fx;
  auto original = fx.MakeContext(50, 3, false);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx3").ok());
  ModelConfig other = fx.model;
  other.num_layers += 1;
  auto loaded = ser.Load("ctx3", 1, other, RoarGraphOptions{});
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(ContextSerializerTest, MissingContextFails) {
  SerializerFixture fx;
  ContextSerializer ser(&fx.vfs);
  EXPECT_FALSE(ser.Load("ghost", 1, fx.model, RoarGraphOptions{}).ok());
}

TEST(ContextSerializerTest, GenerationStampRoundtrips) {
  SerializerFixture fx;
  auto original = fx.MakeContext(50, 4, false);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx4", /*generation=*/7).ok());
  auto man = ser.LoadManifest("ctx4", fx.model);
  ASSERT_TRUE(man.ok()) << man.status().ToString();
  EXPECT_EQ(man.value().generation, 7u);
}

// --- Torn-write safety: a manifest physically cut short (crash mid-write)
// --- and a manifest garbled in place (bit rot / partial block) must both
// --- surface as Corruption — the disposition warm start skips on — and
// --- never as a half-loaded context.

/// On-disk fixture: the VFS backs names with "<dir>/<name>.vf" POSIX files we
/// can truncate and flip bytes in, like a crash or bad disk would.
struct DiskSerializerFixture {
  ModelConfig model = ModelConfig::Tiny();
  std::string dir;
  DiskSerializerFixture() {
    char buf[] = "/tmp/alaya_ser_XXXXXX";
    char* got = mkdtemp(buf);
    EXPECT_NE(got, nullptr);
    if (got != nullptr) dir = got;
  }
  ~DiskSerializerFixture() {
    if (dir.empty()) return;
    if (DIR* d = opendir(dir.c_str())) {
      while (dirent* e = readdir(d)) {
        const std::string name = e->d_name;
        if (name == "." || name == "..") continue;
        ::unlink((dir + "/" + name).c_str());
      }
      closedir(d);
    }
    ::rmdir(dir.c_str());
  }
  VectorFileSystem::Options VfsOptions() const {
    VectorFileSystem::Options o;
    o.in_memory = false;
    o.dir = dir;
    o.file.dim = 16;
    o.file.max_degree = 32;
    o.file.block_size = 4096;
    return o;
  }
  std::string ManifestPath(const std::string& prefix) const {
    return dir + "/" + ContextSerializer::ManifestName(prefix) + ".vf";
  }
};

TEST(ContextSerializerTest, TruncatedManifestIsCorruption) {
  DiskSerializerFixture fx;
  ASSERT_FALSE(fx.dir.empty());
  {
    VectorFileSystem vfs(fx.VfsOptions());
    SerializerFixture mk;  // Context factory only; persists through `vfs`.
    auto ctx = mk.MakeContext(50, 5, false);
    ContextSerializer ser(&vfs);
    ASSERT_TRUE(ser.Persist(*ctx, "ctx5", /*generation=*/1).ok());
  }
  // Cut the manifest in half — the commit record lost its tail (trailer
  // included), exactly what a crash mid-write leaves behind.
  const std::string path = fx.ManifestPath("ctx5");
  struct stat st {};
  ASSERT_EQ(::stat(path.c_str(), &st), 0);
  ASSERT_EQ(::truncate(path.c_str(), st.st_size / 2), 0);

  VectorFileSystem vfs(fx.VfsOptions());
  ContextSerializer ser(&vfs);
  auto man = ser.LoadManifest("ctx5", fx.model);
  ASSERT_FALSE(man.ok());
  EXPECT_TRUE(man.status().IsCorruption()) << man.status().ToString();
}

TEST(ContextSerializerTest, GarbledManifestFailsChecksum) {
  DiskSerializerFixture fx;
  ASSERT_FALSE(fx.dir.empty());
  {
    VectorFileSystem vfs(fx.VfsOptions());
    SerializerFixture mk;
    auto ctx = mk.MakeContext(50, 6, false);
    ContextSerializer ser(&vfs);
    ASSERT_TRUE(ser.Persist(*ctx, "ctx6", /*generation=*/1).ok());
  }
  // Flip a byte inside a build-stats row (row 8 of the first data block, at
  // header block + 16-byte block header + 8 rows of dim-16 floats):
  // structurally the file still parses — only the checksum can tell.
  const std::string path = fx.ManifestPath("ctx6");
  const off_t offset = 4096 /*header block*/ + 16 /*block header*/ +
                       8 * 16 * static_cast<off_t>(sizeof(float)) + 3;
  int fd = ::open(path.c_str(), O_RDWR);
  ASSERT_GE(fd, 0);
  char byte = 0;
  ASSERT_EQ(::pread(fd, &byte, 1, offset), 1);
  byte = static_cast<char>(byte ^ 0x5A);
  ASSERT_EQ(::pwrite(fd, &byte, 1, offset), 1);
  ::close(fd);

  VectorFileSystem vfs(fx.VfsOptions());
  ContextSerializer ser(&vfs);
  auto man = ser.LoadManifest("ctx6", fx.model);
  ASSERT_FALSE(man.ok());
  EXPECT_TRUE(man.status().IsCorruption()) << man.status().ToString();
  EXPECT_NE(man.status().message().find("checksum"), std::string::npos)
      << man.status().ToString();
}

}  // namespace
}  // namespace alaya
