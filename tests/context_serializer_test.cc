#include "src/core/context_serializer.h"

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/query/diprs.h"

namespace alaya {
namespace {

struct SerializerFixture {
  ModelConfig model = ModelConfig::Tiny();  // dim 16; VFS files use dim 16.
  VectorFileSystem vfs;

  SerializerFixture() : vfs(MakeVfsOptions()) {}

  static VectorFileSystem::Options MakeVfsOptions() {
    VectorFileSystem::Options o;
    o.in_memory = true;
    o.file.dim = 16;
    o.file.max_degree = 32;
    o.file.block_size = 4096;
    return o;
  }

  std::unique_ptr<Context> MakeContext(size_t tokens, uint64_t seed,
                                       bool build_indices) {
    auto kv = std::make_unique<KvCache>(model);
    Rng rng(seed);
    const size_t stride = model.num_kv_heads * model.head_dim;
    std::vector<float> k(stride), v(stride);
    std::vector<int32_t> ids(tokens);
    for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
      for (size_t t = 0; t < tokens; ++t) {
        rng.FillGaussian(k.data(), stride);
        rng.FillGaussian(v.data(), stride);
        kv->AppendToken(layer, k.data(), v.data());
      }
    }
    for (size_t t = 0; t < tokens; ++t) ids[t] = static_cast<int32_t>(100 + t);
    auto ctx = std::make_unique<Context>(1, std::move(ids), std::move(kv));
    if (build_indices) {
      EXPECT_TRUE(ctx->BuildFineIndices(IndexBuildOptions{}, nullptr, nullptr).ok());
    }
    return ctx;
  }
};

TEST(ContextSerializerTest, RoundtripKvAndTokens) {
  SerializerFixture fx;
  auto original = fx.MakeContext(120, 1, /*build_indices=*/false);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx1").ok());

  auto loaded = ser.Load("ctx1", 7, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  EXPECT_EQ(ctx.id(), 7u);
  EXPECT_EQ(ctx.tokens(), original->tokens());
  EXPECT_EQ(ctx.kv().NumTokens(), 120u);
  EXPECT_FALSE(ctx.HasFineIndices());
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      for (uint32_t t = 0; t < 120; t += 17) {
        for (uint32_t j = 0; j < fx.model.head_dim; ++j) {
          EXPECT_EQ(ctx.kv().Keys(layer, h).Vec(t)[j],
                    original->kv().Keys(layer, h).Vec(t)[j]);
          EXPECT_EQ(ctx.kv().Values(layer, h).Vec(t)[j],
                    original->kv().Values(layer, h).Vec(t)[j]);
        }
      }
    }
  }
}

TEST(ContextSerializerTest, RoundtripWithFineIndices) {
  SerializerFixture fx;
  auto original = fx.MakeContext(200, 2, /*build_indices=*/true);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx2").ok());

  auto loaded = ser.Load("ctx2", 9, fx.model, RoarGraphOptions{});
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Context& ctx = *loaded.value();
  ASSERT_TRUE(ctx.HasFineIndices());

  // Adjacency restored exactly for every (layer, kv head).
  for (uint32_t layer = 0; layer < fx.model.num_layers; ++layer) {
    for (uint32_t h = 0; h < fx.model.num_kv_heads; ++h) {
      const RoarGraph* a = original->FineIndex(layer, h * fx.model.GroupSize());
      const RoarGraph* b = ctx.FineIndex(layer, h * fx.model.GroupSize());
      ASSERT_NE(a, nullptr);
      ASSERT_NE(b, nullptr);
      ASSERT_EQ(a->graph().size(), b->graph().size());
      for (uint32_t u = 0; u < a->graph().size(); u += 13) {
        auto na = a->graph().Neighbors(u);
        auto nb = b->graph().Neighbors(u);
        ASSERT_EQ(na.size(), nb.size()) << "node " << u;
        for (size_t i = 0; i < na.size(); ++i) EXPECT_EQ(na[i], nb[i]);
      }
    }
  }

  // The restored index answers searches (smoke: DIPR runs and returns hits).
  const RoarGraph* fine = ctx.FineIndex(1, 0);
  std::vector<float> q(fx.model.head_dim, 0.5f);
  SearchResult res;
  ASSERT_TRUE(fine->SearchDipr(q.data(), DiprParams{1e6f, 16, 0}, &res).ok());
  EXPECT_GT(res.hits.size(), 0u);
}

TEST(ContextSerializerTest, GeometryMismatchRejected) {
  SerializerFixture fx;
  auto original = fx.MakeContext(50, 3, false);
  ContextSerializer ser(&fx.vfs);
  ASSERT_TRUE(ser.Persist(*original, "ctx3").ok());
  ModelConfig other = fx.model;
  other.num_layers += 1;
  auto loaded = ser.Load("ctx3", 1, other, RoarGraphOptions{});
  ASSERT_FALSE(loaded.ok());
  EXPECT_TRUE(loaded.status().IsCorruption());
}

TEST(ContextSerializerTest, MissingContextFails) {
  SerializerFixture fx;
  ContextSerializer ser(&fx.vfs);
  EXPECT_FALSE(ser.Load("ghost", 1, fx.model, RoarGraphOptions{}).ok());
}

}  // namespace
}  // namespace alaya
