// True continuous batching: a request submitted while the engine is mid-step
// is admitted INTO that step (its first prefill chunk drawn from the step's
// unspent token budget), prefilling sessions interleave with decoding, and
// none of it changes a single output bit.
//
// The determinism construction: request A's fill_prompt parks on a gate, so
// the engine is provably mid-step (A's prefill wave outstanding) for as long
// as the test wants. Request B's own fill_prompt is what opens A's gate — so
// if B's chunk runs at all, it ran inside A's step, i.e. mid-step admission
// happened. A broken scheduler deadlocks (caught by the test timeout) instead
// of passing by luck.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "src/common/rng.h"
#include "src/server/serving_engine.h"

namespace alaya {
namespace {

constexpr uint64_t kDocSeed = 7;

/// Deterministic QKV for prompt POSITION `token` — shared by the imported
/// context KV, every request's fill_prompt, and the sequential golden, so
/// schedules can differ while the math cannot.
void FillPromptToken(const ModelConfig& m, size_t token, uint32_t layer, float* q,
                     float* k, float* v) {
  Rng rng(kDocSeed * 2654435761ull + token * 9176ull + layer * 97ull);
  rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
  rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
  rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
}

int32_t PromptTokenId(size_t i) { return 500 + static_cast<int32_t>(i); }

struct ContinuousFixture {
  ModelConfig model = ModelConfig::Tiny();
  size_t stored_tokens;
  SimEnvironment env;
  DbOptions options;
  std::unique_ptr<AlayaDB> db;
  ThreadPool pool{4};

  explicit ContinuousFixture(size_t import_tokens) : stored_tokens(import_tokens) {
    options.model = model;
    options.session.window = WindowConfig{8, 16};
    db = std::make_unique<AlayaDB>(options, &env);
    if (import_tokens > 0) {
      auto kv = std::make_unique<KvCache>(model);
      const size_t qdim = static_cast<size_t>(model.num_q_heads) * model.head_dim;
      const size_t kvdim = static_cast<size_t>(model.num_kv_heads) * model.head_dim;
      std::vector<float> q(qdim), k(kvdim), v(kvdim);
      for (uint32_t layer = 0; layer < model.num_layers; ++layer) {
        for (size_t t = 0; t < import_tokens; ++t) {
          FillPromptToken(model, t, layer, q.data(), k.data(), v.data());
          kv->AppendToken(layer, k.data(), v.data());
        }
      }
      std::vector<int32_t> tokens(import_tokens);
      for (size_t i = 0; i < import_tokens; ++i) tokens[i] = PromptTokenId(i);
      auto imported = db->Import(std::move(tokens), std::move(kv));
      EXPECT_TRUE(imported.ok()) << imported.status().ToString();
    }
  }

  ServingEngineOptions EngineOptions(size_t max_concurrent) {
    ServingEngineOptions o;
    o.scheduler.max_concurrent_sessions = max_concurrent;
    o.pool = &pool;
    return o;
  }

  ServingRequest MakeRequest(size_t prompt_tokens, size_t steps,
                             uint64_t decode_seed) const {
    ServingRequest r;
    r.prompt.resize(prompt_tokens);
    for (size_t i = 0; i < prompt_tokens; ++i) r.prompt[i] = PromptTokenId(i);
    r.max_new_tokens = steps;
    r.record_outputs = true;
    const ModelConfig m = model;
    r.fill_prompt = [m](size_t token, uint32_t layer, float* q, float* k, float* v) {
      FillPromptToken(m, token, layer, q, k, v);
    };
    r.fill_step = [m, decode_seed](size_t step, uint32_t layer, float* q, float* k,
                                   float* v) {
      Rng rng(decode_seed * 1000003ull + step * 131ull + layer);
      rng.FillGaussian(q, static_cast<size_t>(m.num_q_heads) * m.head_dim);
      rng.FillGaussian(k, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
      rng.FillGaussian(v, static_cast<size_t>(m.num_kv_heads) * m.head_dim);
    };
    r.token_at = [decode_seed](size_t step) {
      return static_cast<int32_t>(40000 + decode_seed * 100 + step);
    };
    return r;
  }
};

/// The gate: A's fill_prompt announces itself then parks until opened.
struct PrefillGate {
  std::mutex mu;
  std::condition_variable cv;
  bool entered = false;
  bool open = false;

  void AnnounceAndPark() {
    std::unique_lock<std::mutex> lk(mu);
    entered = true;
    cv.notify_all();
    cv.wait(lk, [this] { return open; });
  }
  void WaitEntered() {
    std::unique_lock<std::mutex> lk(mu);
    cv.wait(lk, [this] { return entered; });
  }
  void Open() {
    std::lock_guard<std::mutex> lk(mu);
    open = true;
    cv.notify_all();
  }
};

/// Wraps a request's fill_prompt so its FIRST call parks on `gate` (later
/// calls pass straight through once the gate opens).
void GateFirstFill(ServingRequest* r, PrefillGate* gate) {
  auto inner = r->fill_prompt;
  auto first = std::make_shared<std::atomic<bool>>(true);
  r->fill_prompt = [inner, gate, first](size_t token, uint32_t layer, float* q,
                                        float* k, float* v) {
    if (first->exchange(false)) gate->AnnounceAndPark();
    inner(token, layer, q, k, v);
  };
}

// --- Tentpole acceptance: mid-step admission is DETERMINISTIC, not a race.
// --- B's prefill opening A's gate proves B's chunk ran inside A's step.

TEST(ServingContinuousTest, AdmissionLandsInsideTheRunningStep) {
  constexpr size_t kPromptA = 48, kPromptB = 24, kSteps = 3;
  ContinuousFixture fx(/*import_tokens=*/0);  // Empty store: both fully prefill.
  ServingEngine engine(fx.db.get(), fx.EngineOptions(2));
  ASSERT_TRUE(engine.Start().ok());

  PrefillGate gate;
  ServingRequest a = fx.MakeRequest(kPromptA, kSteps, /*seed=*/71);
  GateFirstFill(&a, &gate);

  ServingRequest b = fx.MakeRequest(kPromptB, kSteps, /*seed=*/72);
  for (auto& t : b.prompt) t += 1'000'000;  // Distinct doc; same fill math.
  auto b_inner = b.fill_prompt;
  b.fill_prompt = [b_inner, &gate](size_t token, uint32_t layer, float* q, float* k,
                                   float* v) {
    // B running AT ALL while A is parked == B was admitted mid-step: A's
    // step cannot end (its wave holds A's unfinished chunk) until here.
    gate.Open();
    b_inner(token, layer, q, k, v);
  };

  auto ha = engine.Submit(std::move(a));
  ASSERT_TRUE(ha.ok()) << ha.status().ToString();
  gate.WaitEntered();  // A is provably mid-step (its chunk is parked).
  auto hb = engine.Submit(std::move(b));
  ASSERT_TRUE(hb.ok()) << hb.status().ToString();

  const RequestResult* ra = ha.value().Wait();
  const RequestResult* rb = hb.value().Wait();
  ASSERT_NE(ra, nullptr);
  ASSERT_NE(rb, nullptr);
  EXPECT_TRUE(ra->status.ok()) << ra->status.ToString();
  EXPECT_TRUE(rb->status.ok()) << rb->status.ToString();
  EXPECT_EQ(ra->prefilled_tokens, kPromptA);
  EXPECT_EQ(rb->prefilled_tokens, kPromptB);
  ASSERT_TRUE(engine.Shutdown().ok());

  const ServingSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.midstep_admissions, 1u);
  EXPECT_GE(snap.engine_steps, 1u);
}

// --- The open-loop TTFT equivalence golden (satellite): a burst submitted
// --- while the engine is mid-step decodes bit-identically to a sequential
// --- one-at-a-time run, across several chunk-size / step-budget splits and
// --- in the phase-serialized (midstep off) baseline mode.

TEST(ServingContinuousTest, MidStepBurstMatchesSequentialAcrossBudgetSplits) {
  constexpr size_t kStored = 96, kSuffix = 32, kSteps = 3;

  // Request mix: gated partial-prefix head, then a burst of full-reuse,
  // partial-prefix, and no-match requests.
  auto make_requests = [&](ContinuousFixture& fx) {
    std::vector<ServingRequest> reqs;
    reqs.push_back(fx.MakeRequest(kStored + kSuffix, kSteps, 81));  // Head.
    reqs.push_back(fx.MakeRequest(kStored, kSteps, 82));            // Full reuse.
    reqs.push_back(fx.MakeRequest(kStored + 24, kSteps, 83));       // Partial.
    ServingRequest fresh = fx.MakeRequest(40, kSteps, 84);          // No match.
    for (auto& t : fresh.prompt) t += 1'000'000;
    reqs.push_back(std::move(fresh));
    return reqs;
  };

  // Sequential golden: one at a time, default (unbudgeted) scheduler.
  std::vector<RequestResult> golden;
  {
    ContinuousFixture fx(kStored);
    ServingEngine engine(fx.db.get(), fx.EngineOptions(1));
    std::vector<uint64_t> ids;
    for (auto& r : make_requests(fx)) {
      auto id = engine.Submit(std::move(r));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      ids.push_back(id.value().id());
    }
    ASSERT_TRUE(engine.RunToCompletion().ok());
    for (uint64_t id : ids) {
      const RequestResult* r = engine.result(id);
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->status.ok()) << r->status.ToString();
      golden.push_back(*r);
    }
  }

  struct Split {
    size_t chunk;
    size_t budget;
    bool midstep;
  };
  const Split splits[] = {
      {4, 0, true},    // Tiny chunks, unlimited budget.
      {8, 12, true},   // Budget covers head chunk + part of the next.
      {16, 6, true},   // Budget below one chunk: floor carries the head.
      {32, 48, true},  // Roomy budget.
      {16, 12, false}, // Phase-serialized baseline (bench's --no-midstep).
  };
  for (const Split& s : splits) {
    SCOPED_TRACE(testing::Message() << "chunk=" << s.chunk << " budget=" << s.budget
                                    << " midstep=" << s.midstep);
    ContinuousFixture fx(kStored);
    ServingEngineOptions opts = fx.EngineOptions(4);
    opts.scheduler.prefill_chunk_tokens = s.chunk;
    opts.scheduler.step_token_budget = s.budget;
    opts.midstep_admission = s.midstep;
    ServingEngine engine(fx.db.get(), opts);
    ASSERT_TRUE(engine.Start().ok());

    std::vector<ServingRequest> reqs = make_requests(fx);
    PrefillGate gate;
    GateFirstFill(&reqs[0], &gate);

    std::vector<RequestHandle> handles;
    auto head = engine.Submit(std::move(reqs[0]));
    ASSERT_TRUE(head.ok()) << head.status().ToString();
    handles.push_back(head.value());
    gate.WaitEntered();  // The engine is provably mid-step...
    for (size_t i = 1; i < reqs.size(); ++i) {  // ...when the burst arrives.
      auto id = engine.Submit(std::move(reqs[i]));
      ASSERT_TRUE(id.ok()) << id.status().ToString();
      handles.push_back(id.value());
    }
    if (s.midstep) {
      // Hold the head's parked chunk until the driver's poll loop has pulled
      // at least one burst request into the RUNNING step (the snapshot
      // publishes mid-step admissions immediately). The step cannot end while
      // the gate is closed, so this converges deterministically.
      while (engine.snapshot().midstep_admissions == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
    gate.Open();

    for (size_t i = 0; i < handles.size(); ++i) {
      const RequestResult* r = handles[i].Wait();
      ASSERT_NE(r, nullptr);
      ASSERT_TRUE(r->status.ok()) << "request " << i << ": " << r->status.ToString();
      EXPECT_EQ(r->prefilled_tokens, golden[i].prefilled_tokens) << "request " << i;
      ASSERT_EQ(r->outputs.size(), golden[i].outputs.size()) << "request " << i;
      EXPECT_EQ(r->outputs, golden[i].outputs) << "request " << i;
    }
    ASSERT_TRUE(engine.Shutdown().ok());
    const ServingSnapshot snap = engine.snapshot();
    if (s.midstep) {
      // The burst was queued while the head's wave was parked and the driver
      // polls admission between wave checks, so at least one request MUST
      // have been admitted inside that step.
      EXPECT_GE(snap.midstep_admissions, 1u);
    } else {
      EXPECT_EQ(snap.midstep_admissions, 0u);  // Baseline never does.
    }
  }
}

// --- Prefill/decode overlap: sessions in both phases share a step.

TEST(ServingContinuousTest, PrefillingAndDecodingSessionsShareSteps) {
  constexpr size_t kSteps = 6;
  ContinuousFixture fx(/*import_tokens=*/96);
  ServingEngineOptions opts = fx.EngineOptions(2);
  opts.scheduler.prefill_chunk_tokens = 4;  // Many chunks: long prefill phase.
  ServingEngine engine(fx.db.get(), opts);

  // Full-reuse request decodes from step one; the no-match request needs
  // 40 / 4 = 10 chunked steps of prefill first. Both submitted up front: the
  // decoder must not stall behind the prefiller, nor vice versa.
  auto decode_now = engine.Submit(fx.MakeRequest(96, kSteps, 91));
  ServingRequest fresh = fx.MakeRequest(40, kSteps, 92);
  for (auto& t : fresh.prompt) t += 1'000'000;
  auto prefills = engine.Submit(std::move(fresh));
  ASSERT_TRUE(decode_now.ok());
  ASSERT_TRUE(prefills.ok());
  ASSERT_TRUE(engine.RunToCompletion().ok());

  const RequestResult* d = engine.result(decode_now.value().id());
  const RequestResult* p = engine.result(prefills.value().id());
  ASSERT_NE(d, nullptr);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(d->status.ok()) << d->status.ToString();
  ASSERT_TRUE(p->status.ok()) << p->status.ToString();
  EXPECT_EQ(d->steps_completed, kSteps);
  EXPECT_EQ(p->prefilled_tokens, 40u);

  // Overlap proof: phase-serialized would cost 10 (P prefill) + 6 (P decode)
  // + 6 (D decode) = 22 steps; interleaved, D's 6 decode steps ride inside
  // P's 10 prefill steps, so the run fits in ~16 (10 prefill + P's 6 decode).
  const ServingSnapshot snap = engine.snapshot();
  EXPECT_GE(snap.engine_steps, 16u);
  EXPECT_LT(snap.engine_steps, 22u);
  EXPECT_EQ(snap.peak_concurrent_sessions, 2u);
}

}  // namespace
}  // namespace alaya
