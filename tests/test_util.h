// Shared fixtures for index/query tests: planted MIPS data where the
// ground-truth critical set is known by construction.
#pragma once

#include <vector>

#include "src/common/rng.h"
#include "src/common/vec_math.h"
#include "src/index/vector_set.h"

namespace alaya {
namespace testutil {

/// A key set with a planted "critical cone": `critical` ids have inner product
/// with `query` in [ip_min, ip_max]; background keys score well below.
struct PlantedMips {
  VectorSet keys;
  std::vector<float> query;
  std::vector<uint32_t> critical;
  float ip_min = 0, ip_max = 0;

  PlantedMips(size_t n, size_t d, size_t n_critical, uint64_t seed, float q_norm = 40.f,
              float band = 0.25f)
      : keys(d), query(d) {
    Rng rng(seed);
    // Query direction.
    std::vector<float> dir(d);
    rng.FillGaussian(dir.data(), d);
    NormalizeInPlace(dir.data(), d);
    for (size_t i = 0; i < d; ++i) query[i] = dir[i] * q_norm;

    // Critical ids: spread across the range.
    std::vector<size_t> picks = rng.SampleWithoutReplacement(n, n_critical);
    critical.assign(picks.begin(), picks.end());
    std::sort(critical.begin(), critical.end());

    std::vector<bool> is_critical(n, false);
    for (uint32_t id : critical) is_critical[id] = true;

    ip_max = q_norm;
    ip_min = q_norm * (1.f - band);
    std::vector<float> v(d);
    for (size_t i = 0; i < n; ++i) {
      if (is_critical[i]) {
        // cos in [1-band, 1].
        const float cos_t = (1.f - band) + band * rng.UniformFloat();
        std::vector<float> noise(d);
        rng.FillGaussian(noise.data(), d);
        const float proj = Dot(noise.data(), dir.data(), d);
        Axpy(noise.data(), dir.data(), d, -proj);
        NormalizeInPlace(noise.data(), d);
        const float sin_t = std::sqrt(std::max(0.f, 1.f - cos_t * cos_t));
        for (size_t j = 0; j < d; ++j) v[j] = cos_t * dir[j] + sin_t * noise[j];
      } else {
        rng.FillGaussian(v.data(), d);
        NormalizeInPlace(v.data(), d);
        Scale(v.data(), d, 0.4f);  // Background: ip ~ N(0, 0.4*q_norm/sqrt(d)).
      }
      keys.Append(v.data());
    }
  }

  /// Fraction of the critical set present in `hits`.
  double Recall(const std::vector<ScoredId>& hits) const {
    std::vector<bool> found(keys.size(), false);
    for (const auto& h : hits) found[h.id] = true;
    size_t hit = 0;
    for (uint32_t id : critical) {
      if (found[id]) ++hit;
    }
    return critical.empty() ? 1.0
                            : static_cast<double>(hit) /
                                  static_cast<double>(critical.size());
  }
};

/// Exact top-k by inner product.
inline std::vector<ScoredId> BruteTopK(VectorSetView view, const float* q, size_t k) {
  std::vector<ScoredId> all;
  for (uint32_t i = 0; i < view.n; ++i) {
    all.push_back({i, Dot(q, view.Vec(i), view.d)});
  }
  SortByScoreDesc(&all);
  if (all.size() > k) all.resize(k);
  return all;
}

/// Training queries around the planted direction (for RoarGraph builds).
inline VectorSet MakeTrainingQueries(const PlantedMips& data, size_t count,
                                     uint64_t seed, float jitter = 0.3f) {
  const size_t d = data.keys.dim();
  VectorSet out(d);
  Rng rng(seed);
  std::vector<float> q(d);
  for (size_t i = 0; i < count; ++i) {
    for (size_t j = 0; j < d; ++j) {
      q[j] = data.query[j] + jitter * Norm(data.query.data(), d) /
                                 std::sqrt(static_cast<float>(d)) *
                                 rng.GaussianFloat();
    }
    out.Append(q.data());
  }
  return out;
}

}  // namespace testutil
}  // namespace alaya
