#include "src/common/bounded_heap.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "src/common/rng.h"

namespace alaya {
namespace {

TEST(TopKMaxHeapTest, KeepsLargestK) {
  TopKMaxHeap heap(3);
  for (uint32_t i = 0; i < 10; ++i) heap.Push(i, static_cast<float>(i));
  auto sorted = heap.TakeSortedDesc();
  ASSERT_EQ(sorted.size(), 3u);
  EXPECT_EQ(sorted[0].id, 9u);
  EXPECT_EQ(sorted[1].id, 8u);
  EXPECT_EQ(sorted[2].id, 7u);
}

TEST(TopKMaxHeapTest, MatchesSortReference) {
  Rng rng(77);
  for (size_t k : {1u, 5u, 32u, 100u}) {
    TopKMaxHeap heap(k);
    std::vector<ScoredId> all;
    for (uint32_t i = 0; i < 500; ++i) {
      const float s = rng.GaussianFloat();
      heap.Push(i, s);
      all.push_back({i, s});
    }
    SortByScoreDesc(&all);
    all.resize(std::min<size_t>(k, all.size()));
    auto got = heap.TakeSortedDesc();
    ASSERT_EQ(got.size(), all.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_FLOAT_EQ(got[i].score, all[i].score) << "k=" << k << " i=" << i;
    }
  }
}

TEST(TopKMaxHeapTest, ZeroCapacityRejectsAll) {
  TopKMaxHeap heap(0);
  EXPECT_FALSE(heap.Push(1, 10.f));
  EXPECT_FALSE(heap.WouldAccept(100.f));
  EXPECT_TRUE(heap.empty());
}

TEST(TopKMaxHeapTest, WouldAcceptConsistentWithPush) {
  TopKMaxHeap heap(2);
  heap.Push(0, 1.f);
  heap.Push(1, 2.f);
  EXPECT_TRUE(heap.full());
  EXPECT_FLOAT_EQ(heap.MinRetained(), 1.f);
  EXPECT_FALSE(heap.WouldAccept(0.5f));
  EXPECT_FALSE(heap.Push(2, 0.5f));
  EXPECT_TRUE(heap.WouldAccept(3.f));
  EXPECT_TRUE(heap.Push(3, 3.f));
  EXPECT_FLOAT_EQ(heap.MinRetained(), 2.f);
}

TEST(BeamPoolTest, KeepsSortedDescending) {
  BeamPool pool(4);
  pool.Insert(0, 1.f);
  pool.Insert(1, 5.f);
  pool.Insert(2, 3.f);
  pool.Insert(3, 4.f);
  pool.Insert(4, 2.f);  // Evicts the 1.0 entry.
  ASSERT_EQ(pool.size(), 4u);
  EXPECT_FLOAT_EQ(pool[0].score, 5.f);
  EXPECT_FLOAT_EQ(pool[1].score, 4.f);
  EXPECT_FLOAT_EQ(pool[2].score, 3.f);
  EXPECT_FLOAT_EQ(pool[3].score, 2.f);
  EXPECT_FLOAT_EQ(pool.BestScore(), 5.f);
  EXPECT_FLOAT_EQ(pool.WorstScore(), 2.f);
}

TEST(BeamPoolTest, RejectsBelowWorstWhenFull) {
  BeamPool pool(2);
  pool.Insert(0, 10.f);
  pool.Insert(1, 20.f);
  EXPECT_EQ(pool.Insert(2, 5.f), SIZE_MAX);
  EXPECT_EQ(pool.size(), 2u);
}

}  // namespace
}  // namespace alaya
